#include "rtl/retrieval_unit.hpp"

#include <algorithm>

#include "fixed/reciprocal.hpp"
#include "util/contracts.hpp"

namespace qfa::rtl {

const char* rtl_state_name(RtlState state) noexcept {
    switch (state) {
        case RtlState::idle: return "idle";
        case RtlState::fetch_req_type: return "fetch_req_type";
        case RtlState::type_scan_id: return "type_scan_id";
        case RtlState::type_read_ptr: return "type_read_ptr";
        case RtlState::impl_scan_id: return "impl_scan_id";
        case RtlState::impl_read_ptr: return "impl_read_ptr";
        case RtlState::req_read_id: return "req_read_id";
        case RtlState::req_read_value: return "req_read_value";
        case RtlState::req_read_weight: return "req_read_weight";
        case RtlState::supp_scan_id: return "supp_scan_id";
        case RtlState::supp_read_recip: return "supp_read_recip";
        case RtlState::attr_scan_id: return "attr_scan_id";
        case RtlState::attr_read_value: return "attr_read_value";
        case RtlState::compute_abs: return "compute_abs";
        case RtlState::compute_mul: return "compute_mul";
        case RtlState::accumulate: return "accumulate";
        case RtlState::compare_best: return "compare_best";
        case RtlState::done: return "done";
        case RtlState::fail_type: return "fail_type";
        case RtlState::fail_watchdog: return "fail_watchdog";
    }
    return "?";
}

const RtlCandidate& RtlResult::best() const {
    QFA_EXPECTS(!ranked.empty(), "best() on an empty RTL result");
    return ranked.front();
}

RetrievalUnit::RetrievalUnit(RtlConfig config) : config_(config) {
    QFA_EXPECTS(config_.n_best >= 1, "n_best must be at least 1");
    result_regs_.reserve(config_.n_best);
}

void RetrievalUnit::attach_trace(VcdWriter* vcd) {
    vcd_ = vcd;
    trace_.reset();
    if (vcd_ != nullptr) {
        TraceSignals t;
        t.state = vcd_->add_signal("fsm_state", 5);
        t.cycle_parity = vcd_->add_signal("clk", 1);
        t.req_addr = vcd_->add_signal("req_addr", 16);
        t.cb_addr = vcd_->add_signal("cb_addr", 16);
        t.acc_low = vcd_->add_signal("acc_q30", 32);
        t.best_low = vcd_->add_signal("s_best_q30", 32);
        t.impl_id = vcd_->add_signal("impl_id", 16);
        trace_ = t;
    }
}

void RetrievalUnit::trace_cycle() {
    if (!trace_) {
        return;
    }
    vcd_->advance_time(cycle_);
    vcd_->change(trace_->state, static_cast<std::uint64_t>(state_));
    vcd_->change(trace_->cycle_parity, cycle_ & 1);
    vcd_->change(trace_->req_addr, req_pos_ & 0xFFFF);
    vcd_->change(trace_->cb_addr,
                 (state_ == RtlState::supp_scan_id || state_ == RtlState::supp_read_recip
                      ? supp_base_ + supp_pos_
                      : attr_list_base_ + attr_pos_) &
                     0xFFFF);
    vcd_->change(trace_->acc_low, acc_.raw_q30() & 0xFFFFFFFF);
    vcd_->change(trace_->best_low,
                 (result_regs_.empty() ? 0 : result_regs_.front().similarity_q30) &
                     0xFFFFFFFF);
    vcd_->change(trace_->impl_id, cur_impl_id_);
}

void RetrievalUnit::insert_candidate(cbr::ImplId impl, std::uint64_t q30) {
    // Parallel insertion network: strictly-greater comparison against every
    // slot, keeping earlier candidates on ties (fig. 6: "S > S_Best ?").
    const auto pos = std::find_if(result_regs_.begin(), result_regs_.end(),
                                  [q30](const RtlCandidate& c) {
                                      return q30 > c.similarity_q30;
                                  });
    if (pos == result_regs_.end() && result_regs_.size() >= config_.n_best) {
        return;  // not better than any retained slot
    }
    result_regs_.insert(pos, RtlCandidate{impl, q30});
    if (result_regs_.size() > config_.n_best) {
        result_regs_.pop_back();
    }
}

bool RetrievalUnit::tick() {
    if (cycle_ >= config_.max_cycles) {
        enter(RtlState::fail_watchdog);
        return false;
    }
    trace_cycle();
    ++cycle_;

    switch (state_) {
        case RtlState::idle:
            enter(RtlState::fetch_req_type);
            return true;

        case RtlState::fetch_req_type:
            req_type_ = req_mem_.read(0);
            req_pos_ = 1;
            type_ptr_ = 0;
            enter(RtlState::type_scan_id);
            return true;

        case RtlState::type_scan_id: {
            const mem::Word id = cb_mem_.read(type_ptr_);
            if (id == mem::kEndOfList) {
                enter(RtlState::fail_type);
                return false;
            }
            if (id == req_type_) {
                enter(RtlState::type_read_ptr);
            } else {
                type_ptr_ += 2;  // skip the pointer word by address arithmetic
            }
            return true;
        }

        case RtlState::type_read_ptr:
            impl_ptr_ = cb_mem_.read(type_ptr_ + 1);
            enter(RtlState::impl_scan_id);
            return true;

        case RtlState::impl_scan_id: {
            const mem::Word id = cb_mem_.read(impl_ptr_);
            if (id == mem::kEndOfList) {
                enter(RtlState::done);
                return false;
            }
            cur_impl_id_ = id;
            enter(RtlState::impl_read_ptr);
            return true;
        }

        case RtlState::impl_read_ptr:
            attr_list_base_ = cb_mem_.read(impl_ptr_ + 1);
            attr_pos_ = 0;
            supp_pos_ = 0;
            req_pos_ = 1;
            acc_.reset();
            enter(RtlState::req_read_id);
            return true;

        case RtlState::req_read_id: {
            if (config_.compact_blocks) {
                // Doubled port: (id, value) in one access.
                const auto [id, value] = req_mem_.read_pair(req_pos_);
                if (id == mem::kEndOfList) {
                    enter(RtlState::compare_best);
                    return true;
                }
                cur_attr_id_ = id;
                cur_attr_value_ = value;
                enter(RtlState::req_read_weight);
                return true;
            }
            const mem::Word id = req_mem_.read(req_pos_);
            if (id == mem::kEndOfList) {
                enter(RtlState::compare_best);
                return true;
            }
            cur_attr_id_ = id;
            enter(RtlState::req_read_value);
            return true;
        }

        case RtlState::req_read_value:
            cur_attr_value_ = req_mem_.read(req_pos_ + 1);
            enter(RtlState::req_read_weight);
            return true;

        case RtlState::req_read_weight: {
            const mem::Word raw = req_mem_.read(req_pos_ + 2);
            cur_weight_ = raw > fx::Q15::kRawOne ? fx::Q15::kRawOne : raw;
            req_pos_ += 3;
            if (!config_.resume_sorted_scan) {
                supp_pos_ = 0;  // ablation: restart every supplemental search
            }
            enter(RtlState::supp_scan_id);
            return true;
        }

        case RtlState::supp_scan_id: {
            const mem::Word id = cb_mem_.read(supp_base_ + supp_pos_);
            if (id == mem::kEndOfList || id > cur_attr_id_) {
                // Attribute has no supplemental block: dmax falls back to 0,
                // i.e. only exact matches score (saturated reciprocal).
                cur_recip_ = fx::Q15::one();
                if (!config_.resume_sorted_scan) {
                    attr_pos_ = 0;
                }
                enter(RtlState::attr_scan_id);
                return true;
            }
            if (id == cur_attr_id_) {
                enter(RtlState::supp_read_recip);
                return true;
            }
            supp_pos_ += 4;  // skip lower/upper/reciprocal words
            return true;
        }

        case RtlState::supp_read_recip: {
            const mem::Word raw = cb_mem_.read(supp_base_ + supp_pos_ + 3);
            cur_recip_ = fx::Q15::from_raw(raw > fx::Q15::kRawOne ? fx::Q15::kRawOne : raw);
            if (!config_.resume_sorted_scan) {
                attr_pos_ = 0;  // ablation: restart every attribute search
            }
            enter(RtlState::attr_scan_id);
            return true;
        }

        case RtlState::attr_scan_id: {
            if (config_.compact_blocks) {
                const auto [id, value] = cb_mem_.read_pair(attr_list_base_ + attr_pos_);
                if (id == mem::kEndOfList || id > cur_attr_id_) {
                    // Missing attribute: unsatisfiable requirement, s_i = 0.
                    ++stats_.attrs_missing;
                    // Pipelined datapath: the zero product folds into this
                    // cycle; proceed with the next request attribute.
                    enter(RtlState::req_read_id);
                    return true;
                }
                if (id == cur_attr_id_) {
                    ++stats_.attrs_matched;
                    cur_case_value_ = value;
                    attr_pos_ += 2;
                    // Pipelined ABS/MULT/MAC overlap the next fetch.
                    local_sim_ = fx::local_similarity_q15(cur_attr_value_, cur_case_value_,
                                                          cur_recip_);
                    acc_.add_product(local_sim_, fx::Q15::from_raw(cur_weight_));
                    enter(RtlState::req_read_id);
                    return true;
                }
                attr_pos_ += 2;
                return true;
            }
            const mem::Word id = cb_mem_.read(attr_list_base_ + attr_pos_);
            if (id == mem::kEndOfList || id > cur_attr_id_) {
                ++stats_.attrs_missing;
                local_sim_ = fx::Q15::zero();
                enter(RtlState::accumulate);
                return true;
            }
            if (id == cur_attr_id_) {
                enter(RtlState::attr_read_value);
                return true;
            }
            attr_pos_ += 2;
            return true;
        }

        case RtlState::attr_read_value:
            cur_case_value_ = cb_mem_.read(attr_list_base_ + attr_pos_ + 1);
            attr_pos_ += 2;
            ++stats_.attrs_matched;
            enter(RtlState::compute_abs);
            return true;

        case RtlState::compute_abs:
            abs_diff_ = fx::attr_distance(cur_attr_value_, cur_case_value_);
            enter(RtlState::compute_mul);
            return true;

        case RtlState::compute_mul:
            // MULT18X18 #1 plus saturating subtract — bit-identical to the
            // fixed-point reference.
            local_sim_ =
                fx::local_similarity_q15(cur_attr_value_, cur_case_value_, cur_recip_);
            enter(RtlState::accumulate);
            return true;

        case RtlState::accumulate:
            // MULT18X18 #2 plus the Q30 accumulator register.
            acc_.add_product(local_sim_, fx::Q15::from_raw(cur_weight_));
            enter(RtlState::req_read_id);
            return true;

        case RtlState::compare_best:
            ++stats_.impls_scored;
            insert_candidate(cbr::ImplId{cur_impl_id_}, acc_.raw_q30());
            impl_ptr_ += 2;
            enter(RtlState::impl_scan_id);
            return true;

        case RtlState::done:
        case RtlState::fail_type:
        case RtlState::fail_watchdog:
            return false;
    }
    QFA_ASSERT(false, "unreachable FSM state");
}

RtlResult RetrievalUnit::run(const mem::RequestImage& request,
                             const mem::CaseBaseImage& case_base) {
    req_mem_ = Bram(request.words);
    cb_mem_ = Bram(case_base.words);
    supp_base_ = case_base.supplemental_offset;

    state_ = RtlState::idle;
    cycle_ = 0;
    result_regs_.clear();
    acc_.reset();
    stats_ = RtlResult{};

    // The idle->fetch transition is the start strobe, not a working cycle;
    // begin in fetch_req_type directly.
    state_ = RtlState::fetch_req_type;
    while (tick()) {
    }

    RtlResult result = stats_;
    result.found = state_ == RtlState::done && !result_regs_.empty();
    result.watchdog_tripped = state_ == RtlState::fail_watchdog;
    result.ranked = result_regs_;
    result.cycles = cycle_;
    result.req_reads = req_mem_.reads();
    result.cb_reads = cb_mem_.reads();
    return result;
}

}  // namespace qfa::rtl
