#include "rtl/resource_model.hpp"

#include <cmath>

#include "rtl/bram.hpp"
#include "util/contracts.hpp"

namespace qfa::rtl {

namespace {

// Per-component slice prices, calibrated so the baseline (n_best = 1,
// normal fetch) sums to the published 441 slices.  A Virtex-II slice holds
// two 4-input LUTs and two flip-flops; 16-bit carry-chain arithmetic costs
// ~8 slices, a 16-bit register 8 flip-flops = ~4 slices when packed with
// logic.  The figures below are consistent with those rules of thumb.
constexpr std::uint32_t kFsmControl = 90;        // 20-state one-hot FSM + decode
constexpr std::uint32_t kAddressPath = 120;      // six 16-bit cursors + adders + mux
constexpr std::uint32_t kAbsUnit = 24;           // 16-bit subtract + conditional negate
constexpr std::uint32_t kSatSubtract = 18;       // Q15 1-x with saturation
constexpr std::uint32_t kAccumulator = 52;       // 32-bit adder + Q30 register
constexpr std::uint32_t kComparator = 33;        // 32-bit magnitude compare
constexpr std::uint32_t kResultSlot = 52;        // S_best + ID registers + enable
constexpr std::uint32_t kGlue = 52;              // operand muxes, terminator detect

// Extension costs (the model's own predictions — no published reference).
constexpr std::uint32_t kExtraResultSlot = 40;   // added registers + insert compare
constexpr std::uint32_t kCompactPort = 34;       // 32-bit port mux + pipeline regs

// Critical-path model (ns), Virtex-II speed grade -4 class numbers:
// BRAM clock-to-out, MULT18X18 combinational, saturating subtract LUT
// levels, routing, FF setup.  Calibrated to 13.33 ns (75 MHz) baseline.
constexpr double kTBramNs = 3.0;
constexpr double kTMultNs = 4.9;
constexpr double kTSatSubNs = 1.9;
constexpr double kTRoutingNs = 3.0;
constexpr double kTSetupNs = 0.53;
// Each doubling of the n-best insertion network adds one compare level.
constexpr double kTInsertLevelNs = 0.6;
// The compact port's wider output mux sits on the memory path.
constexpr double kTCompactMuxNs = 0.5;

}  // namespace

double utilisation_pct(std::uint32_t used, std::uint32_t available) noexcept {
    return available == 0 ? 0.0 : 100.0 * static_cast<double>(used) / available;
}

ResourceEstimate estimate_resources(const ResourceModelConfig& config) {
    QFA_EXPECTS(config.n_best >= 1, "n_best must be at least 1");

    ResourceEstimate est;
    est.breakdown = {
        {"FSM control (fig. 6)", kFsmControl},
        {"address/pointer path", kAddressPath},
        {"ABS difference unit", kAbsUnit},
        {"saturating subtract", kSatSubtract},
        {"Q30 accumulator", kAccumulator},
        {"best comparator", kComparator},
        {"result registers", kResultSlot +
                                 kExtraResultSlot *
                                     static_cast<std::uint32_t>(config.n_best - 1)},
        {"glue / muxing", kGlue},
    };
    if (config.compact_blocks) {
        est.breakdown.push_back({"compact 32-bit port", kCompactPort});
    }
    for (const ResourceItem& item : est.breakdown) {
        est.clb_slices += item.slices;
    }

    // Two multipliers: d x reciprocal and s x w (fig. 7).  The compact
    // pipeline reuses them across overlapped stages.
    est.mult18x18 = 2;

    est.bram_blocks = brams_for_words(config.cb_capacity_words);

    double path_ns = kTBramNs + kTMultNs + kTSatSubNs + kTRoutingNs + kTSetupNs;
    if (config.n_best > 1) {
        path_ns += kTInsertLevelNs * std::ceil(std::log2(static_cast<double>(config.n_best)));
    }
    if (config.compact_blocks) {
        path_ns += kTCompactMuxNs;
    }
    est.fmax_mhz = 1000.0 / path_ns;
    return est;
}

}  // namespace qfa::rtl
