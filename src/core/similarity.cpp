#include "core/similarity.hpp"

namespace qfa::cbr {

double local_similarity(AttrValue request_value, AttrValue case_value,
                        std::uint32_t dmax) noexcept {
    const auto d = static_cast<double>(manhattan_distance(request_value, case_value));
    const double ratio = d / (1.0 + static_cast<double>(dmax));
    if (ratio >= 1.0) {
        return 0.0;
    }
    return 1.0 - ratio;
}

fx::Q15 local_similarity_q15(AttrValue request_value, AttrValue case_value,
                             fx::Q15 reciprocal) noexcept {
    return fx::local_similarity_q15(request_value, case_value, reciprocal);
}

double local_similarity_squared(AttrValue request_value, AttrValue case_value,
                                std::uint32_t dmax) noexcept {
    const auto d = static_cast<double>(manhattan_distance(request_value, case_value));
    const double ratio = d / (1.0 + static_cast<double>(dmax));
    if (ratio >= 1.0) {
        return 0.0;
    }
    return 1.0 - ratio * ratio;
}

double local_similarity(LocalMetric metric, AttrValue request_value, AttrValue case_value,
                        std::uint32_t dmax) noexcept {
    switch (metric) {
        case LocalMetric::manhattan:
            return local_similarity(request_value, case_value, dmax);
        case LocalMetric::squared:
            return local_similarity_squared(request_value, case_value, dmax);
    }
    return 0.0;
}

}  // namespace qfa::cbr
