// Minimal dense linear algebra for the Mahalanobis similarity alternative.
//
// §2.2 names the Mahalanobis distance ("calculating the co-variance matrix
// of the whole set of function attributes") as more effective but too
// expensive for the hardware.  Reproducing that cost comparison (E13) needs
// a small self-contained dense solver: symmetric covariance accumulation,
// ridge regularization and Cholesky factorization/solve.  Dimensions are
// tiny (one per distinct attribute id), so an O(n^3) dense kernel is right.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace qfa::cbr {

/// Row-major dense matrix of doubles.
class Matrix {
public:
    Matrix() = default;

    /// rows x cols matrix, zero-initialised.
    Matrix(std::size_t rows, std::size_t cols);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

    [[nodiscard]] double& at(std::size_t r, std::size_t c);
    [[nodiscard]] double at(std::size_t r, std::size_t c) const;

    /// Identity matrix of size n.
    [[nodiscard]] static Matrix identity(std::size_t n);

    /// this + other (same shape required).
    [[nodiscard]] Matrix add(const Matrix& other) const;

    /// this * scalar.
    [[nodiscard]] Matrix scaled(double factor) const;

    /// Matrix-vector product (vector size must equal cols).
    [[nodiscard]] std::vector<double> multiply(std::span<const double> vec) const;

    /// Frobenius-norm distance to another matrix of the same shape.
    [[nodiscard]] double frobenius_distance(const Matrix& other) const;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// Lower-triangular Cholesky factor L with A = L·Lᵀ.
///
/// Returns nullopt when A is not (numerically) symmetric positive definite.
[[nodiscard]] std::optional<Matrix> cholesky(const Matrix& a);

/// Solves A·x = b given the Cholesky factor L of A (forward + back
/// substitution).  b.size() must equal L.rows().
[[nodiscard]] std::vector<double> cholesky_solve(const Matrix& l, std::span<const double> b);

/// Sample covariance of the row vectors in `samples` (n_samples x dim),
/// with ridge term `ridge`·I added for invertibility on degenerate data.
/// Requires at least one sample.
[[nodiscard]] Matrix covariance(const std::vector<std::vector<double>>& samples, double ridge);

/// Column means of the row vectors in `samples`.
[[nodiscard]] std::vector<double> column_means(const std::vector<std::vector<double>>& samples);

}  // namespace qfa::cbr
