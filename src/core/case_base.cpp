#include "core/case_base.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace qfa::cbr {

namespace {

void validate_tree(const std::vector<FunctionType>& types) {
    for (std::size_t t = 0; t < types.size(); ++t) {
        if (t > 0 && !(types[t - 1].id < types[t].id)) {
            throw std::invalid_argument(
                "case base: function types must be strictly ascending by TypeId (violated at " +
                to_string(types[t].id) + ")");
        }
        const FunctionType& type = types[t];
        for (std::size_t i = 0; i < type.impls.size(); ++i) {
            if (i > 0 && !(type.impls[i - 1].id < type.impls[i].id)) {
                throw std::invalid_argument(
                    "case base: implementations of " + to_string(type.id) +
                    " must be strictly ascending by ImplId (violated at " +
                    to_string(type.impls[i].id) + ")");
            }
            if (!attributes_strictly_sorted(type.impls[i].attributes)) {
                throw std::invalid_argument(
                    "case base: attribute list of " + to_string(type.id) + "/" +
                    to_string(type.impls[i].id) +
                    " must be strictly ascending by AttrId (figs. 4/5 pre-sorting)");
            }
        }
    }
}

}  // namespace

const Implementation* FunctionType::find_impl(ImplId impl) const noexcept {
    const auto it = std::lower_bound(
        impls.begin(), impls.end(), impl,
        [](const Implementation& a, ImplId target) { return a.id < target; });
    if (it != impls.end() && it->id == impl) {
        return &*it;
    }
    return nullptr;
}

CaseBase::CaseBase(std::vector<FunctionType> types) : types_(std::move(types)) {
    validate_tree(types_);
}

const FunctionType* CaseBase::find_type(TypeId id) const noexcept {
    const auto it = std::lower_bound(
        types_.begin(), types_.end(), id,
        [](const FunctionType& a, TypeId target) { return a.id < target; });
    if (it != types_.end() && it->id == id) {
        return &*it;
    }
    return nullptr;
}

CaseBaseStats CaseBase::stats() const noexcept {
    CaseBaseStats s;
    s.type_count = types_.size();
    std::set<std::uint16_t> attr_ids;
    for (const FunctionType& type : types_) {
        s.impl_count += type.impls.size();
        s.max_impls_per_type = std::max(s.max_impls_per_type, type.impls.size());
        for (const Implementation& impl : type.impls) {
            s.attribute_count += impl.attributes.size();
            s.max_attrs_per_impl = std::max(s.max_attrs_per_impl, impl.attributes.size());
            for (const Attribute& attr : impl.attributes) {
                attr_ids.insert(attr.id.value());
            }
        }
    }
    s.distinct_attr_ids = attr_ids.size();
    return s;
}

std::vector<AttrId> CaseBase::distinct_attribute_ids() const {
    std::set<std::uint16_t> raw_ids;
    for (const FunctionType& type : types_) {
        for (const Implementation& impl : type.impls) {
            for (const Attribute& attr : impl.attributes) {
                raw_ids.insert(attr.id.value());
            }
        }
    }
    std::vector<AttrId> out;
    out.reserve(raw_ids.size());
    for (std::uint16_t raw : raw_ids) {
        out.push_back(AttrId{raw});
    }
    return out;
}

CaseBaseBuilder& CaseBaseBuilder::begin_type(TypeId id, std::string name) {
    types_.push_back(FunctionType{id, std::move(name), {}});
    return *this;
}

CaseBaseBuilder& CaseBaseBuilder::add_impl(ImplId id, Target target,
                                           std::vector<Attribute> attributes, ImplMeta meta) {
    if (types_.empty()) {
        throw std::invalid_argument("add_impl called before begin_type");
    }
    std::sort(attributes.begin(), attributes.end(), attr_id_less);
    const auto dup = std::adjacent_find(
        attributes.begin(), attributes.end(),
        [](const Attribute& a, const Attribute& b) { return a.id == b.id; });
    if (dup != attributes.end()) {
        throw std::invalid_argument("duplicate attribute " + to_string(dup->id) + " in " +
                                    to_string(id));
    }
    types_.back().impls.push_back(
        Implementation{id, target, std::move(attributes), meta});
    return *this;
}

CaseBase CaseBaseBuilder::build() {
    std::sort(types_.begin(), types_.end(),
              [](const FunctionType& a, const FunctionType& b) { return a.id < b.id; });
    for (FunctionType& type : types_) {
        std::sort(type.impls.begin(), type.impls.end(),
                  [](const Implementation& a, const Implementation& b) { return a.id < b.id; });
    }
    return CaseBase(std::move(types_));  // CaseBase ctor re-validates (duplicates etc.)
}

CaseBase paper_example_case_base() {
    // Fig. 3: type 1 = FIR Equalizer with three variants; type 2 = 1D-FFT
    // (shown in the figure without expanded implementations — we give it a
    // representative pair so the tree has more than one non-trivial type).
    CaseBaseBuilder builder;
    builder.begin_type(TypeId{1}, "FIR Equalizer");
    builder.add_impl(ImplId{1}, Target::fpga,
                     {{AttrId{1}, 16},   // bitwidth
                      {AttrId{2}, 0},    // integer mode
                      {AttrId{3}, 2},    // output surround
                      {AttrId{4}, 44}},  // kSamples/s
                     ImplMeta{/*config_bytes=*/93'000,
                              ResourceDemand{.clb_slices = 420, .brams = 2, .multipliers = 4},
                              /*static_power_mw=*/120, /*dynamic_power_mw=*/210});
    builder.add_impl(ImplId{2}, Target::dsp,
                     {{AttrId{1}, 16},
                      {AttrId{2}, 0},
                      {AttrId{3}, 1},    // output stereo
                      {AttrId{4}, 44}},
                     ImplMeta{/*config_bytes=*/18'000,
                              ResourceDemand{.dsp_load_pct = 35},
                              /*static_power_mw=*/90, /*dynamic_power_mw=*/160});
    builder.add_impl(ImplId{3}, Target::gpp,
                     {{AttrId{1}, 8},
                      {AttrId{2}, 0},
                      {AttrId{3}, 0},    // output mono
                      {AttrId{4}, 22}},
                     ImplMeta{/*config_bytes=*/6'000,
                              ResourceDemand{.cpu_load_pct = 55},
                              /*static_power_mw=*/40, /*dynamic_power_mw=*/310});
    builder.begin_type(TypeId{2}, "1D-FFT");
    builder.add_impl(ImplId{1}, Target::fpga,
                     {{AttrId{1}, 16}, {AttrId{2}, 0}, {AttrId{4}, 44}},
                     ImplMeta{/*config_bytes=*/110'000,
                              ResourceDemand{.clb_slices = 600, .brams = 4, .multipliers = 8},
                              /*static_power_mw=*/140, /*dynamic_power_mw=*/260});
    builder.add_impl(ImplId{2}, Target::gpp,
                     {{AttrId{1}, 16}, {AttrId{2}, 1}, {AttrId{4}, 8}},
                     ImplMeta{/*config_bytes=*/9'000,
                              ResourceDemand{.cpu_load_pct = 70},
                              /*static_power_mw=*/40, /*dynamic_power_mw=*/330});
    return builder.build();
}

}  // namespace qfa::cbr
