// The case base: the paper's function-implementation tree (figs. 3 and 5).
//
// A three-level hierarchy: function types (level 0) own implementation
// variants (level 1), each of which owns a sorted attribute list (level 2).
// The in-memory form here is the *reference* representation used by the
// double-precision retriever and by all design-time tooling; qfa::mem packs
// it into the 16-bit word lists the hardware walks.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/attribute.hpp"
#include "core/deploy.hpp"
#include "core/ids.hpp"

namespace qfa::cbr {

/// One implementation variant of a function type (level 1 + level 2).
struct Implementation {
    ImplId id;
    Target target = Target::gpp;
    std::vector<Attribute> attributes;  ///< strictly ascending by AttrId
    ImplMeta meta;

    /// Looks up one attribute value (binary search on the sorted list).
    [[nodiscard]] std::optional<AttrValue> attribute(AttrId attr) const noexcept {
        return find_attribute(attributes, attr);
    }
};

/// One basic function type and all its implementation variants (level 0).
struct FunctionType {
    TypeId id;
    std::string name;
    std::vector<Implementation> impls;  ///< ascending by ImplId

    [[nodiscard]] const Implementation* find_impl(ImplId impl) const noexcept;
};

/// Aggregate shape numbers of a case base (drives Table 3 style accounting).
struct CaseBaseStats {
    std::size_t type_count = 0;
    std::size_t impl_count = 0;
    std::size_t attribute_count = 0;
    std::size_t max_impls_per_type = 0;
    std::size_t max_attrs_per_impl = 0;
    std::size_t distinct_attr_ids = 0;
};

/// Immutable, validated function-implementation tree.
///
/// Construction goes through CaseBaseBuilder (or directly from a vector of
/// FunctionType, which is validated); every structural invariant of the
/// paper's lists is enforced:
///  * function types strictly ascending by TypeId,
///  * implementations strictly ascending by ImplId within a type,
///  * attribute lists strictly ascending by AttrId (figs. 4/5 pre-sorting).
class CaseBase {
public:
    CaseBase() = default;

    /// Validates and adopts the given tree; throws std::invalid_argument
    /// with a precise message when an invariant is violated.
    explicit CaseBase(std::vector<FunctionType> types);

    /// Level-0 lookup by function type id; nullptr when absent.
    [[nodiscard]] const FunctionType* find_type(TypeId id) const noexcept;

    [[nodiscard]] std::span<const FunctionType> types() const noexcept { return types_; }
    [[nodiscard]] bool empty() const noexcept { return types_.empty(); }

    [[nodiscard]] CaseBaseStats stats() const noexcept;

    /// Every distinct attribute id appearing anywhere in the tree, ascending.
    [[nodiscard]] std::vector<AttrId> distinct_attribute_ids() const;

private:
    std::vector<FunctionType> types_;  ///< ascending by TypeId
};

/// Fluent builder for case bases.
///
///   CaseBase cb = CaseBaseBuilder()
///       .begin_type(TypeId{1}, "FIR Equalizer")
///           .add_impl(ImplId{1}, Target::fpga,
///                     {{AttrId{1}, 16}, {AttrId{2}, 0}, ...})
///       .build();
///
/// Attribute lists may be given in any order; the builder sorts them and
/// rejects duplicates (throws std::invalid_argument).
class CaseBaseBuilder {
public:
    /// Opens a new function type; types may be added in any order.
    CaseBaseBuilder& begin_type(TypeId id, std::string name);

    /// Adds an implementation to the most recently opened type.
    CaseBaseBuilder& add_impl(ImplId id, Target target, std::vector<Attribute> attributes,
                              ImplMeta meta = {});

    /// Finalises; throws std::invalid_argument on duplicate ids.
    [[nodiscard]] CaseBase build();

private:
    std::vector<FunctionType> types_;
};

/// Builds the exact case base of the paper's fig. 3 (FIR equalizer with
/// FPGA / DSP / GP-Proc variants, plus the empty 1D-FFT type entry).
/// Deployment metadata is filled with plausible values for the system-level
/// examples; retrieval results depend only on the published attributes.
[[nodiscard]] CaseBase paper_example_case_base();

}  // namespace qfa::cbr
