#include "core/bounds.hpp"

#include <stdexcept>

#include "fixed/reciprocal.hpp"

namespace qfa::cbr {

BoundsTable::BoundsTable(std::map<AttrId, AttrBounds> bounds) : bounds_(std::move(bounds)) {
    for (const auto& [id, b] : bounds_) {
        if (b.lower > b.upper) {
            throw std::invalid_argument("bounds of " + to_string(id) +
                                        " have lower > upper");
        }
    }
}

BoundsTable BoundsTable::from_case_base(const CaseBase& cb) {
    BoundsTable table;
    for (const FunctionType& type : cb.types()) {
        for (const Implementation& impl : type.impls) {
            for (const Attribute& attr : impl.attributes) {
                table.cover(attr.id, attr.value);
            }
        }
    }
    return table;
}

void BoundsTable::cover(AttrId id, AttrValue value) {
    const auto it = bounds_.find(id);
    if (it == bounds_.end()) {
        bounds_.emplace(id, AttrBounds{value, value});
        return;
    }
    AttrBounds& b = it->second;
    if (value < b.lower) {
        b.lower = value;
    }
    if (value > b.upper) {
        b.upper = value;
    }
}

std::optional<AttrBounds> BoundsTable::find(AttrId id) const noexcept {
    const auto it = bounds_.find(id);
    if (it == bounds_.end()) {
        return std::nullopt;
    }
    return it->second;
}

std::uint32_t BoundsTable::dmax(AttrId id) const noexcept {
    const auto b = find(id);
    return b ? b->dmax() : 0;
}

fx::Q15 BoundsTable::reciprocal(AttrId id) const noexcept {
    return fx::reciprocal_q15(dmax(id));
}

BoundsTable paper_example_bounds() {
    return BoundsTable({
        {AttrId{1}, AttrBounds{8, 16}},   // bitwidth: dmax 8
        {AttrId{2}, AttrBounds{0, 1}},    // processing mode: dmax 1
        {AttrId{3}, AttrBounds{0, 2}},    // output mode: dmax 2
        {AttrId{4}, AttrBounds{8, 44}},   // sampling rate: dmax 36
    });
}

}  // namespace qfa::cbr
