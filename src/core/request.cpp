#include "core/request.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/contracts.hpp"

namespace qfa::cbr {

Request::Request(TypeId type, std::vector<RequestAttribute> constraints)
    : type_(type), constraints_(std::move(constraints)) {
    if (constraints_.empty()) {
        throw std::invalid_argument("request needs at least one constraint");
    }
    std::sort(constraints_.begin(), constraints_.end(),
              [](const RequestAttribute& a, const RequestAttribute& b) { return a.id < b.id; });
    const auto dup = std::adjacent_find(
        constraints_.begin(), constraints_.end(),
        [](const RequestAttribute& a, const RequestAttribute& b) { return a.id == b.id; });
    if (dup != constraints_.end()) {
        throw std::invalid_argument("duplicate request constraint " + to_string(dup->id));
    }
    double sum = 0.0;
    for (const RequestAttribute& c : constraints_) {
        if (c.weight < 0.0 || !std::isfinite(c.weight)) {
            throw std::invalid_argument("request weight of " + to_string(c.id) +
                                        " must be finite and non-negative");
        }
        sum += c.weight;
    }
    if (sum <= 0.0) {
        throw std::invalid_argument("request weights must not all be zero");
    }
}

std::optional<RequestAttribute> Request::find(AttrId id) const noexcept {
    const auto it = std::lower_bound(
        constraints_.begin(), constraints_.end(), id,
        [](const RequestAttribute& a, AttrId target) { return a.id < target; });
    if (it != constraints_.end() && it->id == id) {
        return *it;
    }
    return std::nullopt;
}

double Request::weight_sum() const noexcept {
    return std::accumulate(constraints_.begin(), constraints_.end(), 0.0,
                           [](double acc, const RequestAttribute& c) { return acc + c.weight; });
}

Request Request::normalized() const {
    const double sum = weight_sum();
    QFA_ASSERT(sum > 0.0, "validated request must have positive weight sum");
    std::vector<RequestAttribute> scaled = constraints_;
    for (RequestAttribute& c : scaled) {
        c.weight /= sum;
    }
    return Request(type_, std::move(scaled));
}

std::optional<Request> Request::without_weakest_constraint() const {
    if (constraints_.size() <= 1) {
        return std::nullopt;
    }
    const auto weakest = std::min_element(
        constraints_.begin(), constraints_.end(),
        [](const RequestAttribute& a, const RequestAttribute& b) { return a.weight < b.weight; });
    std::vector<RequestAttribute> remaining;
    remaining.reserve(constraints_.size() - 1);
    for (auto it = constraints_.begin(); it != constraints_.end(); ++it) {
        if (it != weakest) {
            remaining.push_back(*it);
        }
    }
    return Request(type_, std::move(remaining));
}

std::uint64_t Request::fingerprint() const noexcept {
    // FNV-1a over the canonical (sorted) byte representation.
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    auto mix = [&hash](std::uint64_t value) {
        for (int byte = 0; byte < 8; ++byte) {
            hash ^= (value >> (byte * 8)) & 0xffU;
            hash *= 0x100000001b3ULL;
        }
    };
    mix(type_.value());
    for (const RequestAttribute& c : constraints_) {
        mix(c.id.value());
        mix(c.value);
        mix(std::bit_cast<std::uint64_t>(c.weight));
    }
    return hash;
}

void quantize_weights(std::span<const double> normalized_weights,
                      std::vector<fx::Q15>& out) {
    WeightQuantScratch scratch;
    quantize_weights(normalized_weights, out, scratch);
}

void quantize_weights(std::span<const double> normalized_weights,
                      std::vector<fx::Q15>& out, WeightQuantScratch& scratch) {
    double sum = 0.0;
    for (const double w : normalized_weights) {
        sum += w;
    }
    QFA_EXPECTS(std::abs(sum - 1.0) < 1e-9,
                "quantize_weights requires normalized weights (Σ w = 1)");

    // Largest-remainder quantization: floor everything, then hand out the
    // remaining raw units to the constraints with the biggest remainders so
    // the raw total is exactly 2^15.
    const std::size_t n = normalized_weights.size();
    std::vector<std::uint32_t>& raw = scratch.raw;
    std::vector<double>& remainder = scratch.remainder;
    raw.assign(n, 0);
    remainder.assign(n, 0.0);
    std::int64_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const double exact = normalized_weights[i] * static_cast<double>(fx::Q15::kScale);
        raw[i] = static_cast<std::uint32_t>(std::floor(exact));
        remainder[i] = exact - std::floor(exact);
        total += raw[i];
    }
    std::int64_t missing = static_cast<std::int64_t>(fx::Q15::kScale) - total;
    QFA_ASSERT(missing >= 0 && missing <= static_cast<std::int64_t>(n),
               "largest-remainder bookkeeping out of range");
    std::vector<std::size_t>& order = scratch.order;
    order.resize(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(), [&remainder](std::size_t a, std::size_t b) {
        return remainder[a] > remainder[b];
    });
    for (std::size_t k = 0; k < static_cast<std::size_t>(missing); ++k) {
        ++raw[order[k]];
    }

    out.clear();
    out.reserve(n);
    for (std::uint32_t r : raw) {
        // A single constraint with weight 1.0 quantizes to the saturated one.
        out.push_back(r >= fx::Q15::kScale ? fx::Q15::one()
                                           : fx::Q15::from_raw(static_cast<std::uint16_t>(r)));
    }
}

std::vector<fx::Q15> quantize_weights(const Request& request) {
    const auto constraints = request.constraints();
    std::vector<double> weights;
    weights.reserve(constraints.size());
    for (const RequestAttribute& c : constraints) {
        weights.push_back(c.weight);
    }
    std::vector<fx::Q15> out;
    quantize_weights(weights, out);
    return out;
}

Request paper_example_request() {
    return Request(TypeId{1}, {
                                  {AttrId{1}, 16, 1.0 / 3.0},  // bitwidth 16
                                  {AttrId{3}, 1, 1.0 / 3.0},   // stereo mode
                                  {AttrId{4}, 40, 1.0 / 3.0},  // 40 kSamples/s
                              });
}

}  // namespace qfa::cbr
