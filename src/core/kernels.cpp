// Baseline kernel table + the once-per-process runtime dispatch.
//
// This TU compiles core/kernels.inl with the binary's ordinary target
// flags, so base_kernels() is SSE2 on stock x86-64, AVX2 under
// -march=native, NEON on AArch64, and scalar everywhere else (including
// QFA_SIMD=off builds, where util/simd.hpp collapses to the scalar
// wrappers project-wide).

#include "core/kernels.hpp"

#include <cstring>

#include "util/simd.hpp"

#define QFA_KERN_NS kern_base
#include "core/kernels.inl"
#undef QFA_KERN_NS

namespace qfa::cbr::kern {

namespace {

bool cpu_has_avx2() noexcept {
#if !defined(QFA_SIMD_DISABLED) && (defined(__x86_64__) || defined(__i386__))
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

}  // namespace

const KernelTable& base_kernels() noexcept { return kern_base::table(); }

const KernelTable& active_kernels() noexcept {
#if defined(QFA_SIMD_DISABLED)
    return scalar_kernels();
#else
    static const KernelTable* const chosen = [] {
        const KernelTable* avx2 = avx2_kernels();
        return (avx2 != nullptr && cpu_has_avx2()) ? avx2 : &base_kernels();
    }();
    return *chosen;
#endif
}

std::span<const KernelTable* const> available_kernels() noexcept {
    // Scalar first (the reference), then each distinct wider table.  In a
    // QFA_SIMD=off build all three collapse to scalar and the list is one
    // entry; in a -march=native build base may itself be AVX2, in which
    // case the separately compiled AVX2 table still exercises the
    // force-compiled TU.
    static const KernelTable* tables[3];
    static const std::size_t count = [] {
        std::size_t n = 0;
        tables[n++] = &scalar_kernels();
        if (std::strcmp(base_kernels().isa, "scalar") != 0) {
            tables[n++] = &base_kernels();
        }
        if (const KernelTable* avx2 = avx2_kernels();
            avx2 != nullptr && cpu_has_avx2()) {
            tables[n++] = avx2;
        }
        return n;
    }();
    return {tables, count};
}

}  // namespace qfa::cbr::kern
