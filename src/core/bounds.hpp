// Attribute supplemental data: design-global bounds and dmax (fig. 4 right).
//
// §3: "The dmax values [...] were taken from an extra table [...] generated
// at design time containing supplemental data on the attributes'
// design-global upper/lower value bounds."  The table also stores the
// pre-calculated reciprocal (1+dmax)^-1 used by the divider-free datapath.
//
// Bounds are *design-global*: they cover every occurrence of an attribute id
// across the whole implementation library, not just the implementations of
// one function type.  (That is why the paper's Table 1 uses dmax = 44-8 = 36
// for the sampling rate although the FIR variants alone span only 22..44.)
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/attribute.hpp"
#include "core/case_base.hpp"
#include "core/ids.hpp"
#include "fixed/q15.hpp"

namespace qfa::cbr {

/// Bounds of one attribute id over the whole design.
struct AttrBounds {
    AttrValue lower = 0;
    AttrValue upper = 0;

    /// Maximum possible distance d_max = upper - lower.
    [[nodiscard]] constexpr std::uint32_t dmax() const noexcept {
        return static_cast<std::uint32_t>(upper) - static_cast<std::uint32_t>(lower);
    }

    friend constexpr bool operator==(const AttrBounds&, const AttrBounds&) noexcept = default;
};

/// The supplemental table: attribute id -> bounds (+ derived reciprocal).
class BoundsTable {
public:
    BoundsTable() = default;

    /// Designer-specified bounds.  Throws std::invalid_argument if any
    /// lower bound exceeds its upper bound.
    explicit BoundsTable(std::map<AttrId, AttrBounds> bounds);

    /// Derives bounds from every attribute occurrence in the case base —
    /// the automated design-time generation path.
    [[nodiscard]] static BoundsTable from_case_base(const CaseBase& cb);

    /// Widens (or creates) the entry so that it covers `value`.  Used by the
    /// dynamic case-base update path (retain): bounds only ever grow, so
    /// previously computed similarities stay valid as *lower* bounds.
    void cover(AttrId id, AttrValue value);

    /// Bounds for an id; nullopt when the id never occurs in the design.
    [[nodiscard]] std::optional<AttrBounds> find(AttrId id) const noexcept;

    /// dmax for an id; 0 when unknown (conservative: only exact matches
    /// score, mirroring the hardware's saturated reciprocal).
    [[nodiscard]] std::uint32_t dmax(AttrId id) const noexcept;

    /// Q15 reciprocal (1+dmax)^-1 for an id (fig. 4's "maxrange-1" entry).
    [[nodiscard]] fx::Q15 reciprocal(AttrId id) const noexcept;

    /// All entries ascending by id — the order of the packed list.
    [[nodiscard]] const std::map<AttrId, AttrBounds>& entries() const noexcept {
        return bounds_;
    }

    [[nodiscard]] std::size_t size() const noexcept { return bounds_.size(); }
    [[nodiscard]] bool empty() const noexcept { return bounds_.empty(); }

private:
    std::map<AttrId, AttrBounds> bounds_;
};

/// The design-global bounds used by the paper's Table 1 example:
/// bitwidth in [8,16], processing mode in [0,1], output mode in [0,2],
/// sampling rate in [8,44] (hence dmax = 8, 1, 2, 36).
[[nodiscard]] BoundsTable paper_example_bounds();

}  // namespace qfa::cbr
