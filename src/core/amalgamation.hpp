// Amalgamation functions — eq. (2) of the paper.
//
// An amalgamation function S_global maps the vector of local similarities
// (a point in the cube [0,1]^n) back to a scalar in [0,1].  §2.2 requires it
// to be monotone in every argument with S(0,...,0)=0 and S(1,...,1)=1, and
// the paper uses the weighted sum.  Alternatives (minimum = fully
// conjunctive, maximum = fully disjunctive, ordered weighted average) are
// provided for the design-choice ablation; all satisfy the same axioms,
// which the property tests check.
#pragma once

#include <memory>
#include <span>
#include <string>

namespace qfa::cbr {

/// Interface of a global similarity amalgamation.
///
/// combine() expects locals and weights of equal size; weights are
/// normalized (Σ w_i = 1).  Implementations must be monotone in every local
/// similarity and map the all-zero / all-one vectors to 0 / 1.
class Amalgamation {
public:
    virtual ~Amalgamation() = default;

    /// Combines local similarities into the global similarity in [0, 1].
    [[nodiscard]] virtual double combine(std::span<const double> locals,
                                         std::span<const double> weights) const = 0;

    /// Display name for benches and logs.
    [[nodiscard]] virtual std::string name() const = 0;
};

/// Eq. (2): S = Σ w_i · s_i — the paper's choice.
class WeightedSum final : public Amalgamation {
public:
    [[nodiscard]] double combine(std::span<const double> locals,
                                 std::span<const double> weights) const override;
    [[nodiscard]] std::string name() const override { return "weighted-sum"; }
};

/// S = min_i s_i: every constraint must match (weights ignored).
class MinAmalgamation final : public Amalgamation {
public:
    [[nodiscard]] double combine(std::span<const double> locals,
                                 std::span<const double> weights) const override;
    [[nodiscard]] std::string name() const override { return "minimum"; }
};

/// S = max_i s_i: any constraint may carry the match (weights ignored).
class MaxAmalgamation final : public Amalgamation {
public:
    [[nodiscard]] double combine(std::span<const double> locals,
                                 std::span<const double> weights) const override;
    [[nodiscard]] std::string name() const override { return "maximum"; }
};

/// Ordered weighted average: weights are applied to the locals sorted in
/// descending order, so weight i expresses "importance of the i-th best
/// match" rather than of a particular attribute.
class OrderedWeightedAverage final : public Amalgamation {
public:
    [[nodiscard]] double combine(std::span<const double> locals,
                                 std::span<const double> weights) const override;
    [[nodiscard]] std::string name() const override { return "ordered-weighted-average"; }
};

/// Weighted Euclidean amalgamation: S = 1 - sqrt(Σ w_i (1-s_i)^2).
/// Together with LocalMetric::manhattan this gives the Euclidean global
/// measure mentioned in §2.2 as an alternative.
class WeightedEuclidean final : public Amalgamation {
public:
    [[nodiscard]] double combine(std::span<const double> locals,
                                 std::span<const double> weights) const override;
    [[nodiscard]] std::string name() const override { return "weighted-euclidean"; }
};

/// Named amalgamation kinds for configuration surfaces.
enum class AmalgamationKind { weighted_sum, minimum, maximum, owa, weighted_euclidean };

/// Factory for the named kinds.
[[nodiscard]] std::unique_ptr<Amalgamation> make_amalgamation(AmalgamationKind kind);

}  // namespace qfa::cbr
