// Generic column-kernel bodies, instantiated once per instruction set.
//
// Included by core/kernels.cpp (baseline flags), core/kernels_avx2.cpp
// (per-source -mavx2) and core/kernels_scalar.cpp (QFA_SIMD_FORCE_SCALAR):
// each including TU defines QFA_KERN_NS to a distinct namespace and gets
// this source compiled over the util/simd.hpp wrappers its target flags
// select.  The loops are the verbatim arithmetic of the scalar reference
// paths — d = |req - case|, ratio = d / (1 + dmax), clamp-at-one branch
// realised as an AND mask, presence realised as an AND mask, one multiply
// by the normalized weight, one add per row — at kF64Lanes / kQ15Lanes
// rows per step.  Per-row accumulators are independent, so widening the
// loop cannot reorder any row's additions: results are bit-identical to
// the scalar table at every width (pinned by tests/core/simd_kernel_test).
//
// Preconditions (guaranteed by the padded TypePlan layout): padded_rows is
// a multiple of simd::kRowBlock (or 0), and the padded tail slots of
// `values` / `mask` hold 0 — they contribute exactly +0.0 / 0 and the
// callers never read their accumulator lanes.

#ifndef QFA_KERN_NS
#error "kernels.inl must be included with QFA_KERN_NS defined"
#endif

namespace qfa::cbr::kern {
namespace QFA_KERN_NS {

static_assert(kQ8Block % qfa::simd::kRowBlock == 0,
              "a Q8 quantization block must be a whole number of row vectors");

namespace {

void accumulate_manhattan(double* acc, const std::uint16_t* values,
                          const std::uint16_t* mask, std::size_t padded_rows,
                          std::uint16_t request_value, double divisor, double weight) {
    namespace v = qfa::simd;
    const v::f64v one = v::f64_broadcast(1.0);
    const v::f64v div = v::f64_broadcast(divisor);
    const v::f64v w = v::f64_broadcast(weight);
    const v::f64v req = v::f64_broadcast(static_cast<double>(request_value));
    for (std::size_t r = 0; r < padded_rows; r += v::kF64Lanes) {
        const v::f64v d = v::f64_abs(v::f64_sub(req, v::f64_from_u16(values + r)));
        const v::f64v ratio = v::f64_div(d, div);
        // s = ratio >= 1 ? 0 : 1 - ratio, then presence-masked: both
        // branches of the reference realised as bitwise AND (s is never
        // negative where kept, so masking equals the branch bit-for-bit).
        v::f64v s = v::f64_and(v::f64_sub(one, ratio), v::f64_lt(ratio, one));
        s = v::f64_and(s, v::f64_lanemask_u16(mask + r));
        v::f64_storeu(acc + r, v::f64_add(v::f64_loadu(acc + r), v::f64_mul(w, s)));
    }
}

void accumulate_squared(double* acc, const std::uint16_t* values,
                        const std::uint16_t* mask, std::size_t padded_rows,
                        std::uint16_t request_value, double divisor, double weight) {
    namespace v = qfa::simd;
    const v::f64v one = v::f64_broadcast(1.0);
    const v::f64v div = v::f64_broadcast(divisor);
    const v::f64v w = v::f64_broadcast(weight);
    const v::f64v req = v::f64_broadcast(static_cast<double>(request_value));
    for (std::size_t r = 0; r < padded_rows; r += v::kF64Lanes) {
        const v::f64v d = v::f64_abs(v::f64_sub(req, v::f64_from_u16(values + r)));
        const v::f64v ratio = v::f64_div(d, div);
        v::f64v s = v::f64_and(v::f64_sub(one, v::f64_mul(ratio, ratio)),
                               v::f64_lt(ratio, one));
        s = v::f64_and(s, v::f64_lanemask_u16(mask + r));
        v::f64_storeu(acc + r, v::f64_add(v::f64_loadu(acc + r), v::f64_mul(w, s)));
    }
}

void accumulate_q15(std::uint64_t* acc, const std::uint16_t* values,
                    const std::uint16_t* mask, std::size_t padded_rows,
                    std::uint16_t request_value, std::uint16_t reciprocal_raw,
                    std::uint16_t weight_raw) {
    namespace v = qfa::simd;
    for (std::size_t r = 0; r < padded_rows; r += v::kQ15Lanes) {
        v::q15_block(acc + r, values + r, mask + r, request_value, reciprocal_raw,
                     weight_raw);
    }
}

// Q8 phase-1 kernels.  The outer loop walks one quantization block per
// iteration so the block's f32 scale is broadcast once; the inner loop is
// the manhattan/squared loop above with the u16 load replaced by
// v̂ = scale × (code − 1) — both factors are exact f64 values and the
// product fits 32 significand bits, so the dequantization itself rounds
// nothing (the only error is the quantization error the plan's per-block
// bound advertises).  Code 0 (absent / padding) dequantizes to −scale,
// which is then zeroed by the lane mask exactly like a sentinel slot on
// the exact tier.  kQ8Block is a multiple of kRowBlock and padded_rows is
// a multiple of kRowBlock, so only the last block can be partial and every
// step stays whole-vector.
//
// One deliberate departure from the exact kernels: ratio is d × (1/divisor)
// instead of d / divisor.  Phase-1 scores are never compared bit-for-bit
// against the exact scan — only against the per-block error bound — and the
// reciprocal's extra rounding (≤ 2 ulps of a ratio ≤ 1, i.e. ≲ 2⁻⁵¹ per
// constraint) sits orders of magnitude under the kTwoPhaseSlack the
// retrieval side folds into that bound (retrieval.cpp).  Trading the lane
// division for a multiply is what makes the Q8 scan faster per row than
// the exact scan, not just smaller.  The reciprocal is computed once in
// scalar f64, so all ISA tables still produce bitwise-identical phase-1
// scores (tests/core/simd_kernel_test.cpp).

void accumulate_q8_manhattan(double* acc, const std::uint8_t* codes, const float* scales,
                             std::size_t padded_rows, std::uint16_t request_value,
                             double divisor, double weight) {
    namespace v = qfa::simd;
    const v::f64v one = v::f64_broadcast(1.0);
    const v::f64v rdiv = v::f64_broadcast(1.0 / divisor);
    const v::f64v w = v::f64_broadcast(weight);
    const v::f64v req = v::f64_broadcast(static_cast<double>(request_value));
    for (std::size_t b = 0, r = 0; r < padded_rows; ++b) {
        const v::f64v scale = v::f64_broadcast(static_cast<double>(scales[b]));
        const std::size_t end =
            r + kQ8Block < padded_rows ? r + kQ8Block : padded_rows;
        for (; r < end; r += v::kF64Lanes) {
            const v::f64v vhat =
                v::f64_mul(scale, v::f64_sub(v::f64_from_u8(codes + r), one));
            const v::f64v d = v::f64_abs(v::f64_sub(req, vhat));
            const v::f64v ratio = v::f64_mul(d, rdiv);
            v::f64v s = v::f64_and(v::f64_sub(one, ratio), v::f64_lt(ratio, one));
            s = v::f64_and(s, v::f64_lanemask_u8(codes + r));
            v::f64_storeu(acc + r, v::f64_add(v::f64_loadu(acc + r), v::f64_mul(w, s)));
        }
    }
}

void accumulate_q8_squared(double* acc, const std::uint8_t* codes, const float* scales,
                           std::size_t padded_rows, std::uint16_t request_value,
                           double divisor, double weight) {
    namespace v = qfa::simd;
    const v::f64v one = v::f64_broadcast(1.0);
    const v::f64v rdiv = v::f64_broadcast(1.0 / divisor);
    const v::f64v w = v::f64_broadcast(weight);
    const v::f64v req = v::f64_broadcast(static_cast<double>(request_value));
    for (std::size_t b = 0, r = 0; r < padded_rows; ++b) {
        const v::f64v scale = v::f64_broadcast(static_cast<double>(scales[b]));
        const std::size_t end =
            r + kQ8Block < padded_rows ? r + kQ8Block : padded_rows;
        for (; r < end; r += v::kF64Lanes) {
            const v::f64v vhat =
                v::f64_mul(scale, v::f64_sub(v::f64_from_u8(codes + r), one));
            const v::f64v d = v::f64_abs(v::f64_sub(req, vhat));
            const v::f64v ratio = v::f64_mul(d, rdiv);
            v::f64v s = v::f64_and(v::f64_sub(one, v::f64_mul(ratio, ratio)),
                                   v::f64_lt(ratio, one));
            s = v::f64_and(s, v::f64_lanemask_u8(codes + r));
            v::f64_storeu(acc + r, v::f64_add(v::f64_loadu(acc + r), v::f64_mul(w, s)));
        }
    }
}

}  // namespace

const KernelTable& table() noexcept {
    static const KernelTable t{qfa::simd::kIsaName,      &accumulate_manhattan,
                               &accumulate_squared,      &accumulate_q15,
                               &accumulate_q8_manhattan, &accumulate_q8_squared};
    return t;
}

}  // namespace QFA_KERN_NS
}  // namespace qfa::cbr::kern
