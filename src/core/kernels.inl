// Generic column-kernel bodies, instantiated once per instruction set.
//
// Included by core/kernels.cpp (baseline flags), core/kernels_avx2.cpp
// (per-source -mavx2) and core/kernels_scalar.cpp (QFA_SIMD_FORCE_SCALAR):
// each including TU defines QFA_KERN_NS to a distinct namespace and gets
// this source compiled over the util/simd.hpp wrappers its target flags
// select.  The loops are the verbatim arithmetic of the scalar reference
// paths — d = |req - case|, ratio = d / (1 + dmax), clamp-at-one branch
// realised as an AND mask, presence realised as an AND mask, one multiply
// by the normalized weight, one add per row — at kF64Lanes / kQ15Lanes
// rows per step.  Per-row accumulators are independent, so widening the
// loop cannot reorder any row's additions: results are bit-identical to
// the scalar table at every width (pinned by tests/core/simd_kernel_test).
//
// Preconditions (guaranteed by the padded TypePlan layout): padded_rows is
// a multiple of simd::kRowBlock (or 0), and the padded tail slots of
// `values` / `mask` hold 0 — they contribute exactly +0.0 / 0 and the
// callers never read their accumulator lanes.

#ifndef QFA_KERN_NS
#error "kernels.inl must be included with QFA_KERN_NS defined"
#endif

namespace qfa::cbr::kern {
namespace QFA_KERN_NS {

namespace {

void accumulate_manhattan(double* acc, const std::uint16_t* values,
                          const std::uint16_t* mask, std::size_t padded_rows,
                          std::uint16_t request_value, double divisor, double weight) {
    namespace v = qfa::simd;
    const v::f64v one = v::f64_broadcast(1.0);
    const v::f64v div = v::f64_broadcast(divisor);
    const v::f64v w = v::f64_broadcast(weight);
    const v::f64v req = v::f64_broadcast(static_cast<double>(request_value));
    for (std::size_t r = 0; r < padded_rows; r += v::kF64Lanes) {
        const v::f64v d = v::f64_abs(v::f64_sub(req, v::f64_from_u16(values + r)));
        const v::f64v ratio = v::f64_div(d, div);
        // s = ratio >= 1 ? 0 : 1 - ratio, then presence-masked: both
        // branches of the reference realised as bitwise AND (s is never
        // negative where kept, so masking equals the branch bit-for-bit).
        v::f64v s = v::f64_and(v::f64_sub(one, ratio), v::f64_lt(ratio, one));
        s = v::f64_and(s, v::f64_lanemask_u16(mask + r));
        v::f64_storeu(acc + r, v::f64_add(v::f64_loadu(acc + r), v::f64_mul(w, s)));
    }
}

void accumulate_squared(double* acc, const std::uint16_t* values,
                        const std::uint16_t* mask, std::size_t padded_rows,
                        std::uint16_t request_value, double divisor, double weight) {
    namespace v = qfa::simd;
    const v::f64v one = v::f64_broadcast(1.0);
    const v::f64v div = v::f64_broadcast(divisor);
    const v::f64v w = v::f64_broadcast(weight);
    const v::f64v req = v::f64_broadcast(static_cast<double>(request_value));
    for (std::size_t r = 0; r < padded_rows; r += v::kF64Lanes) {
        const v::f64v d = v::f64_abs(v::f64_sub(req, v::f64_from_u16(values + r)));
        const v::f64v ratio = v::f64_div(d, div);
        v::f64v s = v::f64_and(v::f64_sub(one, v::f64_mul(ratio, ratio)),
                               v::f64_lt(ratio, one));
        s = v::f64_and(s, v::f64_lanemask_u16(mask + r));
        v::f64_storeu(acc + r, v::f64_add(v::f64_loadu(acc + r), v::f64_mul(w, s)));
    }
}

void accumulate_q15(std::uint64_t* acc, const std::uint16_t* values,
                    const std::uint16_t* mask, std::size_t padded_rows,
                    std::uint16_t request_value, std::uint16_t reciprocal_raw,
                    std::uint16_t weight_raw) {
    namespace v = qfa::simd;
    for (std::size_t r = 0; r < padded_rows; r += v::kQ15Lanes) {
        v::q15_block(acc + r, values + r, mask + r, request_value, reciprocal_raw,
                     weight_raw);
    }
}

}  // namespace

const KernelTable& table() noexcept {
    static const KernelTable t{qfa::simd::kIsaName, &accumulate_manhattan,
                               &accumulate_squared, &accumulate_q15};
    return t;
}

}  // namespace QFA_KERN_NS
}  // namespace qfa::cbr::kern
