#include "core/linalg.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace qfa::cbr {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
    QFA_EXPECTS(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

double& Matrix::at(std::size_t r, std::size_t c) {
    QFA_EXPECTS(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
    QFA_EXPECTS(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        m.at(i, i) = 1.0;
    }
    return m;
}

Matrix Matrix::add(const Matrix& other) const {
    QFA_EXPECTS(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch in add");
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) {
        out.data_[i] = data_[i] + other.data_[i];
    }
    return out;
}

Matrix Matrix::scaled(double factor) const {
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) {
        out.data_[i] = data_[i] * factor;
    }
    return out;
}

std::vector<double> Matrix::multiply(std::span<const double> vec) const {
    QFA_EXPECTS(vec.size() == cols_, "vector size must match matrix columns");
    std::vector<double> out(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < cols_; ++c) {
            sum += at(r, c) * vec[c];
        }
        out[r] = sum;
    }
    return out;
}

double Matrix::frobenius_distance(const Matrix& other) const {
    QFA_EXPECTS(rows_ == other.rows_ && cols_ == other.cols_,
                "shape mismatch in frobenius_distance");
    double sum = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        const double diff = data_[i] - other.data_[i];
        sum += diff * diff;
    }
    return std::sqrt(sum);
}

std::optional<Matrix> cholesky(const Matrix& a) {
    QFA_EXPECTS(a.rows() == a.cols(), "cholesky needs a square matrix");
    const std::size_t n = a.rows();
    Matrix l(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        double diag = a.at(j, j);
        for (std::size_t k = 0; k < j; ++k) {
            diag -= l.at(j, k) * l.at(j, k);
        }
        if (diag <= 0.0 || !std::isfinite(diag)) {
            return std::nullopt;  // not positive definite
        }
        l.at(j, j) = std::sqrt(diag);
        for (std::size_t i = j + 1; i < n; ++i) {
            double sum = a.at(i, j);
            for (std::size_t k = 0; k < j; ++k) {
                sum -= l.at(i, k) * l.at(j, k);
            }
            l.at(i, j) = sum / l.at(j, j);
        }
    }
    return l;
}

std::vector<double> cholesky_solve(const Matrix& l, std::span<const double> b) {
    QFA_EXPECTS(l.rows() == l.cols(), "cholesky factor must be square");
    QFA_EXPECTS(b.size() == l.rows(), "rhs size must match factor");
    const std::size_t n = l.rows();

    // Forward substitution: L y = b.
    std::vector<double> y(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double sum = b[i];
        for (std::size_t k = 0; k < i; ++k) {
            sum -= l.at(i, k) * y[k];
        }
        y[i] = sum / l.at(i, i);
    }

    // Back substitution: Lᵀ x = y.
    std::vector<double> x(n, 0.0);
    for (std::size_t ii = n; ii > 0; --ii) {
        const std::size_t i = ii - 1;
        double sum = y[i];
        for (std::size_t k = i + 1; k < n; ++k) {
            sum -= l.at(k, i) * x[k];
        }
        x[i] = sum / l.at(i, i);
    }
    return x;
}

std::vector<double> column_means(const std::vector<std::vector<double>>& samples) {
    QFA_EXPECTS(!samples.empty(), "column_means needs at least one sample");
    const std::size_t dim = samples.front().size();
    std::vector<double> mean(dim, 0.0);
    for (const auto& row : samples) {
        QFA_EXPECTS(row.size() == dim, "ragged sample matrix");
        for (std::size_t c = 0; c < dim; ++c) {
            mean[c] += row[c];
        }
    }
    for (double& m : mean) {
        m /= static_cast<double>(samples.size());
    }
    return mean;
}

Matrix covariance(const std::vector<std::vector<double>>& samples, double ridge) {
    QFA_EXPECTS(!samples.empty(), "covariance needs at least one sample");
    QFA_EXPECTS(ridge >= 0.0, "ridge must be non-negative");
    const std::size_t dim = samples.front().size();
    const std::vector<double> mean = column_means(samples);
    Matrix cov(dim, dim);
    for (const auto& row : samples) {
        for (std::size_t i = 0; i < dim; ++i) {
            for (std::size_t j = 0; j < dim; ++j) {
                cov.at(i, j) += (row[i] - mean[i]) * (row[j] - mean[j]);
            }
        }
    }
    const double denom = samples.size() > 1 ? static_cast<double>(samples.size() - 1) : 1.0;
    for (std::size_t i = 0; i < dim; ++i) {
        for (std::size_t j = 0; j < dim; ++j) {
            cov.at(i, j) /= denom;
        }
        cov.at(i, i) += ridge;
    }
    return cov;
}

}  // namespace qfa::cbr
