// Function requests: desired type plus weighted QoS constraints (fig. 4 left).
//
// A request names the desired basic-function type and any subset of
// constraining attributes — §3: "the request's attribute-set does not have
// to be completely specified; incomplete subsets are possible as well which
// is a nice property of case-based retrieval."  Each constraint carries a
// weight w_i; eq. (2) requires Σ w_i = 1, which normalized() establishes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/attribute.hpp"
#include "core/ids.hpp"
#include "fixed/q15.hpp"

namespace qfa::cbr {

/// One weighted QoS constraint of a request.
struct RequestAttribute {
    AttrId id;
    AttrValue value = 0;
    double weight = 1.0;  ///< relative importance; normalized() rescales

    friend constexpr bool operator==(const RequestAttribute&,
                                     const RequestAttribute&) noexcept = default;
};

/// A validated function request.
///
/// Invariants: constraints strictly ascending by AttrId, all weights
/// non-negative with a positive sum, at least one constraint.
class Request {
public:
    /// Validates and adopts; constraint order is normalized internally.
    /// Throws std::invalid_argument on duplicate ids, negative weights or an
    /// all-zero weight vector.
    Request(TypeId type, std::vector<RequestAttribute> constraints);

    [[nodiscard]] TypeId type() const noexcept { return type_; }
    [[nodiscard]] std::span<const RequestAttribute> constraints() const noexcept {
        return constraints_;
    }
    [[nodiscard]] std::size_t size() const noexcept { return constraints_.size(); }

    /// Constraint lookup by attribute id (binary search).
    [[nodiscard]] std::optional<RequestAttribute> find(AttrId id) const noexcept;

    /// Copy with weights rescaled so that Σ w_i = 1 (eq. 2 requirement).
    [[nodiscard]] Request normalized() const;

    /// Sum of the raw weights.
    [[nodiscard]] double weight_sum() const noexcept;

    /// Copy without the constraint with the smallest weight — one step of
    /// the "repeat the request with rather relaxed constraints" loop (§3).
    /// Returns nullopt when only one constraint remains.
    [[nodiscard]] std::optional<Request> without_weakest_constraint() const;

    /// Stable 64-bit fingerprint of (type, constraints, weights) used as the
    /// bypass-token cache key (§3).  Weights participate via their exact
    /// bit patterns, so any change invalidates the token.
    [[nodiscard]] std::uint64_t fingerprint() const noexcept;

    friend bool operator==(const Request&, const Request&) noexcept = default;

private:
    TypeId type_;
    std::vector<RequestAttribute> constraints_;
};

/// Quantizes normalized request weights to Q15 with largest-remainder
/// correction so the raw weights sum to exactly 2^15 — the invariant the
/// hardware accumulator relies on (Σ w = 1.0 in Q15).
///
/// Requires a normalized request (Σ w_i = 1 within 1e-9).
[[nodiscard]] std::vector<fx::Q15> quantize_weights(const Request& request);

/// Working buffers of the largest-remainder quantizer.  One per serving
/// thread (RetrievalScratch embeds one): reused across calls so the
/// quantization step performs no steady-state allocation.
struct WeightQuantScratch {
    std::vector<std::uint32_t> raw;
    std::vector<double> remainder;
    std::vector<std::size_t> order;
};

/// Same quantization over a bare weight vector (Σ w_i = 1 within 1e-9),
/// writing into a caller-owned buffer — the allocation-free core the
/// Request overload and the compiled batch path share.  The first form
/// allocates its working buffers per call; the second reuses the caller's.
void quantize_weights(std::span<const double> normalized_weights,
                      std::vector<fx::Q15>& out);
void quantize_weights(std::span<const double> normalized_weights,
                      std::vector<fx::Q15>& out, WeightQuantScratch& scratch);

/// The paper's fig. 3 request: FIR equalizer, bitwidth 16, stereo output,
/// 40 kSamples/s, equal weights (Table 1 uses w_i = 1/3).
[[nodiscard]] Request paper_example_request();

}  // namespace qfa::cbr
