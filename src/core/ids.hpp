// Strong identifier types for the case-base domain model.
//
// The paper keys everything by small integer IDs stored in 16-bit words:
// function types (IDType), implementation variants (IDImpl) and attribute
// types (ACB_i / AReq_i).  Distinct C++ types prevent mixing them up
// (Core Guidelines P.1/I.4: express ideas directly, strong interfaces).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace qfa::cbr {

namespace detail {

/// CRTP base for a 16-bit id with equality/ordering and hashing.
template <typename Tag>
class Id16 {
public:
    using raw_type = std::uint16_t;

    constexpr Id16() noexcept = default;
    constexpr explicit Id16(raw_type value) noexcept : value_(value) {}

    [[nodiscard]] constexpr raw_type value() const noexcept { return value_; }

    constexpr auto operator<=>(const Id16&) const noexcept = default;

private:
    raw_type value_ = 0;
};

}  // namespace detail

/// Global function-type identifier (IDType in the paper, fig. 3).
struct TypeId : detail::Id16<TypeId> {
    using Id16::Id16;
};

/// Implementation-variant identifier (IDImpl), unique within its type.
struct ImplId : detail::Id16<ImplId> {
    using Id16::Id16;
};

/// Attribute-type identifier (the `i` of AReq_i / ACB_i).
struct AttrId : detail::Id16<AttrId> {
    using Id16::Id16;
};

/// Execution target of an implementation variant (fig. 1 / fig. 3).
enum class Target : std::uint8_t {
    fpga,  ///< partially reconfigurable FPGA module
    dsp,   ///< DSP kernel
    gpp,   ///< general-purpose processor software task
};

/// Human-readable target name ("FPGA", "DSP", "GP-Proc" as in table 1).
[[nodiscard]] constexpr const char* target_name(Target t) noexcept {
    switch (t) {
        case Target::fpga: return "FPGA";
        case Target::dsp: return "DSP";
        case Target::gpp: return "GP-Proc";
    }
    return "?";
}

[[nodiscard]] inline std::string to_string(TypeId id) {
    return "type#" + std::to_string(id.value());
}
[[nodiscard]] inline std::string to_string(ImplId id) {
    return "impl#" + std::to_string(id.value());
}
[[nodiscard]] inline std::string to_string(AttrId id) {
    return "attr#" + std::to_string(id.value());
}

}  // namespace qfa::cbr

template <>
struct std::hash<qfa::cbr::TypeId> {
    std::size_t operator()(qfa::cbr::TypeId id) const noexcept {
        return std::hash<std::uint16_t>{}(id.value());
    }
};
template <>
struct std::hash<qfa::cbr::ImplId> {
    std::size_t operator()(qfa::cbr::ImplId id) const noexcept {
        return std::hash<std::uint16_t>{}(id.value());
    }
};
template <>
struct std::hash<qfa::cbr::AttrId> {
    std::size_t operator()(qfa::cbr::AttrId id) const noexcept {
        return std::hash<std::uint16_t>{}(id.value());
    }
};
