#include "core/retain.hpp"

#include <algorithm>

#include "core/similarity.hpp"
#include "util/contracts.hpp"

namespace qfa::cbr {

DynamicCaseBase::DynamicCaseBase(CaseBase initial)
    : types_(initial.types().begin(), initial.types().end()),
      bounds_(BoundsTable::from_case_base(initial)) {}

CaseBase DynamicCaseBase::snapshot() const {
    return CaseBase(types_);
}

FunctionType* DynamicCaseBase::find_type(TypeId id) {
    const auto it = std::lower_bound(
        types_.begin(), types_.end(), id,
        [](const FunctionType& a, TypeId target) { return a.id < target; });
    if (it != types_.end() && it->id == id) {
        return &*it;
    }
    return nullptr;
}

const FunctionType* DynamicCaseBase::find_type(TypeId id) const {
    return const_cast<DynamicCaseBase*>(this)->find_type(id);
}

bool DynamicCaseBase::add_type(TypeId id, std::string name) {
    if (find_type(id) != nullptr) {
        return false;
    }
    const auto it = std::lower_bound(
        types_.begin(), types_.end(), id,
        [](const FunctionType& a, TypeId target) { return a.id < target; });
    types_.insert(it, FunctionType{id, std::move(name), {}});
    ++stats_.types_added;
    ++epoch_;
    return true;
}

double DynamicCaseBase::nearest_neighbour_similarity(TypeId type,
                                                     const Implementation& impl) const {
    const FunctionType* ft = find_type(type);
    if (ft == nullptr || ft->impls.empty() || impl.attributes.empty()) {
        return 0.0;
    }
    // Equal-weight eq. (1)/(2) similarity of the candidate's attribute list
    // against each existing variant, taking the nearest one.
    double best = 0.0;
    for (const Implementation& existing : ft->impls) {
        double sum = 0.0;
        for (const Attribute& attr : impl.attributes) {
            const auto other = existing.attribute(attr.id);
            if (!other) {
                continue;  // missing on the old case: contributes 0
            }
            // Bounds may not cover a brand-new attribute id yet; cover()
            // semantics make dmax at least the observed distance.
            const std::uint32_t dist = manhattan_distance(attr.value, *other);
            const std::uint32_t dmax = std::max(bounds_.dmax(attr.id), dist);
            sum += local_similarity(attr.value, *other, dmax);
        }
        best = std::max(best, sum / static_cast<double>(impl.attributes.size()));
    }
    return best;
}

RetainVerdict DynamicCaseBase::retain(TypeId type, Implementation impl,
                                      double novelty_threshold) {
    QFA_EXPECTS(novelty_threshold >= 0.0 && novelty_threshold <= 1.0,
                "novelty threshold must lie in [0, 1]");
    FunctionType* ft = find_type(type);
    if (ft == nullptr) {
        return RetainVerdict::unknown_type;
    }
    if (ft->find_impl(impl.id) != nullptr) {
        return RetainVerdict::duplicate_id;
    }
    std::sort(impl.attributes.begin(), impl.attributes.end(), attr_id_less);
    if (!attributes_strictly_sorted(impl.attributes)) {
        throw std::invalid_argument("retained implementation has duplicate attribute ids");
    }
    if (nearest_neighbour_similarity(type, impl) >= novelty_threshold) {
        ++stats_.rejected_duplicates;
        return RetainVerdict::duplicate;
    }
    for (const Attribute& attr : impl.attributes) {
        bounds_.cover(attr.id, attr.value);
    }
    const auto it = std::lower_bound(
        ft->impls.begin(), ft->impls.end(), impl.id,
        [](const Implementation& a, ImplId target) { return a.id < target; });
    ft->impls.insert(it, std::move(impl));
    ++stats_.retained;
    ++epoch_;
    return RetainVerdict::retained;
}

bool DynamicCaseBase::remove_implementation(TypeId type, ImplId impl) {
    FunctionType* ft = find_type(type);
    if (ft == nullptr) {
        return false;
    }
    const auto it = std::find_if(ft->impls.begin(), ft->impls.end(),
                                 [impl](const Implementation& i) { return i.id == impl; });
    if (it == ft->impls.end()) {
        return false;
    }
    ft->impls.erase(it);
    outcomes_.erase(outcome_key(type, impl));
    ++epoch_;
    return true;
    // Note: bounds are *not* shrunk — design-global bounds only widen, so
    // packed supplemental tables stay valid (conservative) after removal.
}

void DynamicCaseBase::record_outcome(TypeId type, ImplId impl, bool success) {
    OutcomeStats& stats = outcomes_[outcome_key(type, impl)];
    if (success) {
        ++stats.successes;
    } else {
        ++stats.failures;
    }
}

OutcomeStats DynamicCaseBase::outcome(TypeId type, ImplId impl) const {
    const auto it = outcomes_.find(outcome_key(type, impl));
    return it == outcomes_.end() ? OutcomeStats{} : it->second;
}

std::vector<std::pair<TypeId, ImplId>> DynamicCaseBase::revise(double max_failure_rate,
                                                               std::uint32_t min_trials) {
    QFA_EXPECTS(max_failure_rate >= 0.0 && max_failure_rate <= 1.0,
                "failure rate bound must lie in [0, 1]");
    std::vector<std::pair<TypeId, ImplId>> victims;
    for (const FunctionType& type : types_) {
        for (const Implementation& impl : type.impls) {
            const OutcomeStats stats = outcome(type.id, impl.id);
            if (stats.trials() >= min_trials && stats.failure_rate() > max_failure_rate) {
                victims.emplace_back(type.id, impl.id);
            }
        }
    }
    for (const auto& [type, impl] : victims) {
        remove_implementation(type, impl);
        ++stats_.revised_out;
    }
    return victims;
}

}  // namespace qfa::cbr
