// Compiled columnar retrieval plans — the software mirror of figs. 4/5.
//
// The paper packs each function type's implementation descriptions into
// dense, pre-sorted 16-bit word lists so the hardware retrieval unit can
// stream them without pointer chasing (fig. 4: request list + supplemental
// dmax/reciprocal table, fig. 5: the case-base word list walked by the
// fig. 6 state machine).  The reference `CaseBase` keeps the tree in a
// pointer-rich `std::vector` hierarchy instead, and the reference
// `Retriever` pays for that layout on every request: one binary search per
// (implementation × constraint), two heap allocations per implementation
// and a full `stable_sort` per call.
//
// `CompiledCaseBase` is the design-time compilation step that recovers the
// paper's layout on the software side.  For every function type it builds a
// structure-of-arrays *plan* over the union of the type's attribute ids:
//
//           column 0       column 1    ...      (one column per AttrId)
//   row 0 [ value(i0,a0)  value(i0,a1) ... ]    (one row per ImplId)
//   row 1 [ value(i1,a0)  value(i1,a1) ... ]
//
// stored column-major, so scoring one request constraint touches one
// contiguous column for all implementations.  An implementation that lacks
// an attribute holds a sentinel slot: value 0 plus a 0x0000 word in the
// parallel presence-mask array, turning the reference path's
// `std::optional` + binary search into a branch-light gather-and-mask
// (the paper's "missing attribute = unsatisfiable requirement, s_i = 0"
// rule, §3).  Columns are padded to TypePlan::kRowAlign rows with the same
// neutral sentinels so the SIMD column kernels (core/kernels.hpp) stream
// whole vectors tail-free.  Each column also carries its design-global dmax, the exact
// double divisor (1 + dmax) of eq. (1), and the pre-quantized Q15
// reciprocal of fig. 4's "maxrange-1" entry, so the double-precision and
// the Q15 datapath share one compiled layout.
//
// Everything downstream (Retriever::retrieve_compiled / retrieve_batch /
// score_q15_compiled) is bit-identical to the tree-walking reference: same
// operations in the same order, just over a layout the hardware — and the
// cache — likes.
//
// Thread safety.  A CompiledCaseBase is immutable once constructed: any
// number of threads may call find() / plans() / stats() and score against
// the plans concurrently without synchronization, provided each thread uses
// its own RetrievalScratch.  Mutation is modelled as *replacement*: the
// retain path (§5's dynamic case-base update) builds a successor view with
// patched() — *sharing* untouched plans copy-on-write, splicing one row
// into the changed type's columns — and publishes it wholesale (see
// serve/generation.hpp for the epoch-based publication protocol).  Plans
// are held by shared_ptr<const TypePlan>, so consecutive epochs alias the
// type plans that did not change between them: publishing an epoch costs
// one splice plus a pointer copy per untouched type, never a catalogue
// copy.  A view's lifetime must cover the source CaseBase/BoundsTable it
// was compiled against *and* every reader still scoring through it;
// serve::Generation bundles all three under one shared_ptr so retiring an
// epoch frees them together (a TypePlan owns its payload outright and may
// outlive the epoch that built it, kept alive by successor epochs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/bounds.hpp"
#include "core/case_base.hpp"
#include "core/ids.hpp"
#include "core/request.hpp"
#include "fixed/q15.hpp"

namespace qfa::cbr {

/// Compiled structure-of-arrays plan of one function type.
struct TypePlan {
    /// Sentinel column index: the request attribute occurs nowhere in the
    /// type's implementations (every row scores s_i = 0).
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /// Row padding unit of the column payload: every column is padded to a
    /// multiple of kRowAlign rows with neutral sentinels (value 0, presence
    /// 0), so the SIMD column kernels (core/kernels.hpp) run whole vectors
    /// with no scalar tail at any supported lane width.  Deliberately
    /// ISA-independent — the padded geometry, and therefore plan bytes,
    /// COW sharing and stats, is identical whether the binary runs AVX2,
    /// SSE2, NEON or the QFA_SIMD=off scalar fallback.
    static constexpr std::size_t kRowAlign = 8;

    /// Row count of one Q8 quantization block (a kRowAlign multiple, and
    /// equal to kern::kQ8Block — core/retrieval.cpp asserts the match).
    /// Each (column, block) pair carries one f32 scale and one measured
    /// f32 error bound; see the `q8` member below.
    static constexpr std::size_t kQuantBlock = 32;

    TypeId id;
    std::size_t impl_count = 0;

    /// Column stride of the payload vectors: impl_count rounded up to
    /// kRowAlign (0 for an empty type).  Set by compile()/patched().
    std::size_t row_stride = 0;

    /// Slot index of (column c, row r) in the padded payload.
    [[nodiscard]] constexpr std::size_t slot(std::size_t c, std::size_t r) const noexcept {
        return c * row_stride + r;
    }

    /// The padded stride for a row count (kRowAlign multiple, 0 for 0).
    [[nodiscard]] static constexpr std::size_t padded(std::size_t rows) noexcept {
        return (rows + kRowAlign - 1) / kRowAlign * kRowAlign;
    }

    // Row metadata (one entry per implementation, ascending by ImplId).
    std::vector<ImplId> impl_ids;
    std::vector<Target> targets;

    // Column metadata (one entry per distinct AttrId, ascending).
    std::vector<AttrId> attr_ids;
    std::vector<std::uint32_t> dmax;      ///< design-global max distance
    std::vector<double> divisor;          ///< exact 1.0 + dmax of eq. (1)
    std::vector<fx::Q15> reciprocal;      ///< fig. 4 "maxrange-1" entry

    // Column-major payload: slot [c * row_stride + r] is column c, row r.
    // Presence is one maskable 16-bit word per slot (0xFFFF / 0), shared
    // by the double-precision kernels (widened to f64 lane masks) and the
    // Q15 AND-mask loop — 2 bytes per slot where the pre-SIMD layout kept
    // an extra 8-byte double alongside.
    std::vector<AttrValue> values;        ///< 0 in sentinel/padding slots
    std::vector<std::uint16_t> present_mask;  ///< 0xFFFF present / 0x0000

    // Q8 block-quantized third tier — the phase-1 storage of two-phase
    // retrieval (core/retrieval.hpp).  Same padded column-major geometry
    // as `values` (q8[slot(c, r)]), one byte per slot:
    //
    //   code 0            absent (mirrors present_mask == 0) and padding —
    //                     presence is folded into the code so phase 1
    //                     never touches present_mask;
    //   code q ∈ [1,255]  value ≈ (q − 1) × scale of the row's block.
    //
    // Per (column, block of kQuantBlock rows) the plan stores the f32
    // scale (block_max / 254, or 0 for an empty/all-zero block — the
    // dequantized product is exact in f64 either way) and the *measured*
    // max |value − dequant| over the block's present rows, rounded up to
    // the f32 above it.  That measured bound is what makes two-phase
    // retrieval exact rather than lucky: phase 1 can only mis-rank rows
    // by what the bound admits, and the candidate cut widens K whenever
    // the exact rescore cannot prove the rejected rows are out of reach.
    std::vector<std::uint8_t> q8;   ///< quantized codes, 0 = absent/padding
    std::vector<float> q8_scale;    ///< q8_scale[c * q8_blocks() + b]
    std::vector<float> q8_err;      ///< measured per-block error bound

    /// Blocks per column of the Q8 tier (0 for an empty type).
    [[nodiscard]] constexpr std::size_t q8_blocks() const noexcept {
        return (row_stride + kQuantBlock - 1) / kQuantBlock;
    }

    /// True when the Q8 tier is populated (it always is for plans built by
    /// compile()/patched(); an empty type has an empty-but-consistent tier).
    [[nodiscard]] bool has_q8() const noexcept { return q8.size() == values.size(); }

    /// One contiguous payload allocation of this plan (address + bytes).
    /// See payload_regions().
    struct PayloadRegion {
        const void* data = nullptr;
        std::size_t bytes = 0;
    };

    /// The payload allocations a retrieval streams, one region per backing
    /// vector: exact-tier values + present_mask, and the Q8 tier's codes +
    /// per-block scale/error columns.  Empty regions (empty type) are
    /// omitted.  This is the placement hook for the serve layer's NUMA
    /// binding: the engine can ask "which pages does scanning this plan
    /// touch" without core knowing anything about nodes or mbind — and a
    /// caller that never asks pays nothing.  Row/column metadata vectors
    /// are deliberately excluded: they are touched once per request, not
    /// streamed per row, so their placement is noise.
    [[nodiscard]] std::vector<PayloadRegion> payload_regions() const {
        std::vector<PayloadRegion> regions;
        regions.reserve(5);
        const auto add = [&regions](const void* data, std::size_t bytes) {
            if (data != nullptr && bytes > 0) {
                regions.push_back(PayloadRegion{data, bytes});
            }
        };
        add(values.data(), values.size() * sizeof(AttrValue));
        add(present_mask.data(), present_mask.size() * sizeof(std::uint16_t));
        add(q8.data(), q8.size() * sizeof(std::uint8_t));
        add(q8_scale.data(), q8_scale.size() * sizeof(float));
        add(q8_err.data(), q8_err.size() * sizeof(float));
        return regions;
    }

    /// Column index for an attribute id (binary search); npos when the id
    /// never occurs in this type.
    [[nodiscard]] std::size_t column_of(AttrId id) const noexcept;

    /// Maps each (sorted) request constraint to its column via a linear
    /// merge join; out[i] = column index or npos.
    void map_columns(std::span<const RequestAttribute> constraints,
                     std::vector<std::size_t>& out) const;
};

/// Aggregate shape of a compiled case base (bench / memory accounting).
struct CompiledStats {
    std::size_t type_count = 0;
    std::size_t impl_count = 0;
    std::size_t column_count = 0;   ///< Σ per-type distinct attribute ids
    std::size_t value_slots = 0;    ///< Σ columns × rows (incl. sentinels)
    std::size_t sentinel_slots = 0; ///< real-row slots with no attribute
    std::size_t padded_slots = 0;   ///< Σ columns × (row_stride − rows)

    // Payload bytes per storage tier (padded slots included — this is
    // what a column scan actually streams).  The Q15 tier shares the
    // exact tier's values/present_mask arrays, so two tiers of bytes
    // cover all three datapaths.
    std::size_t exact_tier_bytes = 0;  ///< u16 values + u16 present_mask
    std::size_t q8_tier_bytes = 0;     ///< u8 codes + f32 scale/err per block

    /// Bytes one request constraint streams per implementation row on a
    /// given tier (the bench's bandwidth denominator).  0 when empty.
    [[nodiscard]] double exact_bytes_per_row() const noexcept {
        const std::size_t slots = value_slots + padded_slots;
        return slots == 0 ? 0.0
                          : static_cast<double>(exact_tier_bytes) /
                                static_cast<double>(slots);
    }
    [[nodiscard]] double q8_bytes_per_row() const noexcept {
        const std::size_t slots = value_slots + padded_slots;
        return slots == 0 ? 0.0
                          : static_cast<double>(q8_tier_bytes) /
                                static_cast<double>(slots);
    }
};

/// Immutable compiled form of a CaseBase + BoundsTable pair.
///
/// Compilation is a one-time design-time cost (like encoding the fig. 5
/// word lists); the per-request hot paths only read the plans.  The source
/// objects must outlive the compiled view, which keeps pointers to them so
/// consumers can assert they score against the catalogue they compiled.
class CompiledCaseBase {
public:
    CompiledCaseBase() = default;

    /// Compiles every function type of `cb` against the design-global
    /// bounds table.
    CompiledCaseBase(const CaseBase& cb, const BoundsTable& bounds);

    /// Incremental recompile after a retain/revise step (§5's dynamic
    /// update): `cb`/`bounds` are the successor catalogue in which only the
    /// implementation list of `changed` differs from `previous`'s source —
    /// bounds entries may have widened (they only ever widen, see
    /// BoundsTable::cover).  Untouched types *share* their plan with
    /// `previous` copy-on-write (one shared_ptr copy, no payload copy, no
    /// tree walk) as long as their supplemental dmax / divisor /
    /// Q15-reciprocal columns still match `bounds`; a plan whose
    /// design-global bounds widened — a retain into one type reaches into
    /// every other type whose union contains the widened attribute id — is
    /// cloned with refreshed metadata (payload still copied wholesale, not
    /// recompiled).  The changed type takes a row-splice fast path when
    /// exactly one implementation was inserted, and falls back to a
    /// single-type recompile otherwise (removal, bulk edits).  The result
    /// is bit-identical to a fresh CompiledCaseBase(cb, bounds) — same
    /// plans, same slots, same quantized reciprocals — at a fraction of
    /// the cost (the point of the serve layer's incremental epoch
    /// publication).
    [[nodiscard]] static CompiledCaseBase patched(const CompiledCaseBase& previous,
                                                  const CaseBase& cb,
                                                  const BoundsTable& bounds,
                                                  TypeId changed);

    /// Plan for a type id (binary search); nullptr when absent.
    [[nodiscard]] const TypePlan* find(TypeId id) const noexcept;

    /// The per-type plans, ascending by TypeId.  Exposed as shared_ptrs so
    /// callers can both inspect plans (`*plans()[t]`) and observe
    /// copy-on-write sharing across patched() epochs (pointer equality).
    [[nodiscard]] std::span<const std::shared_ptr<const TypePlan>> plans() const noexcept {
        return plans_;
    }
    [[nodiscard]] bool empty() const noexcept { return plans_.empty(); }

    /// The tree this view was compiled from (nullptr when default-built).
    [[nodiscard]] const CaseBase* source() const noexcept { return source_; }
    [[nodiscard]] const BoundsTable* source_bounds() const noexcept { return bounds_; }

    [[nodiscard]] CompiledStats stats() const noexcept;

private:
    /// Ascending by TypeId.  shared_ptr per plan: patched() epochs alias
    /// the plans that did not change between them (copy-on-write), and a
    /// CompiledCaseBase copy is a cheap pointer-vector copy.
    std::vector<std::shared_ptr<const TypePlan>> plans_;
    const CaseBase* source_ = nullptr;
    const BoundsTable* bounds_ = nullptr;
};

/// Shared per-constraint column iteration: invokes
/// `fn(constraint_index, constraint, column_index_or_npos)` for every
/// request constraint, reusing the merge-joined column map in `scratch` —
/// the single traversal both the double-precision and the Q15 compiled
/// scoring loops are routed through.
template <typename Fn>
void for_each_constraint_column(const TypePlan& plan,
                                std::span<const RequestAttribute> constraints,
                                std::vector<std::size_t>& column_scratch, Fn&& fn) {
    plan.map_columns(constraints, column_scratch);
    for (std::size_t i = 0; i < constraints.size(); ++i) {
        fn(i, constraints[i], column_scratch[i]);
    }
}

}  // namespace qfa::cbr
