#include "core/attribute.hpp"

#include <algorithm>

namespace qfa::cbr {

bool attributes_strictly_sorted(std::span<const Attribute> attrs) noexcept {
    for (std::size_t i = 1; i < attrs.size(); ++i) {
        if (!(attrs[i - 1].id < attrs[i].id)) {
            return false;
        }
    }
    return true;
}

std::optional<AttrValue> find_attribute(std::span<const Attribute> attrs, AttrId id) noexcept {
    const auto it = std::lower_bound(
        attrs.begin(), attrs.end(), id,
        [](const Attribute& a, AttrId target) { return a.id < target; });
    if (it != attrs.end() && it->id == id) {
        return it->value;
    }
    return std::nullopt;
}

void SchemaRegistry::add(AttrSchema schema) {
    schemas_[schema.id] = std::move(schema);
}

const AttrSchema* SchemaRegistry::find(AttrId id) const noexcept {
    const auto it = schemas_.find(id);
    return it == schemas_.end() ? nullptr : &it->second;
}

std::string SchemaRegistry::display_name(AttrId id) const {
    const AttrSchema* schema = find(id);
    return schema != nullptr ? schema->name : to_string(id);
}

SchemaRegistry paper_example_schemas() {
    SchemaRegistry registry;
    registry.add({AttrId{1}, "bitwidth", "bit", false});
    registry.add({AttrId{2}, "processing-mode", "", true});   // 0=integer, 1=float
    registry.add({AttrId{3}, "output-mode", "", true});       // 0=mono,1=stereo,2=surround
    registry.add({AttrId{4}, "sampling-rate", "kS/s", false});
    return registry;
}

}  // namespace qfa::cbr
