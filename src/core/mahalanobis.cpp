#include "core/mahalanobis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/contracts.hpp"

namespace qfa::cbr {

MahalanobisScorer::MahalanobisScorer(const CaseBase& cb, double ridge) {
    attr_ids_ = cb.distinct_attribute_ids();
    if (attr_ids_.empty()) {
        throw std::invalid_argument("MahalanobisScorer needs a non-empty case base");
    }

    // First pass: raw samples with NaN for missing attributes.
    std::vector<std::vector<double>> samples;
    for (const FunctionType& type : cb.types()) {
        for (const Implementation& impl : type.impls) {
            std::vector<double> row(attr_ids_.size(),
                                    std::numeric_limits<double>::quiet_NaN());
            for (std::size_t d = 0; d < attr_ids_.size(); ++d) {
                if (auto v = impl.attribute(attr_ids_[d])) {
                    row[d] = static_cast<double>(*v);
                }
            }
            samples.push_back(std::move(row));
        }
    }
    QFA_ASSERT(!samples.empty(), "non-empty attribute set implies samples");

    // Column means over present values only.
    means_.assign(attr_ids_.size(), 0.0);
    for (std::size_t d = 0; d < attr_ids_.size(); ++d) {
        double sum = 0.0;
        std::size_t count = 0;
        for (const auto& row : samples) {
            if (!std::isnan(row[d])) {
                sum += row[d];
                ++count;
            }
        }
        means_[d] = count > 0 ? sum / static_cast<double>(count) : 0.0;
    }

    // Second pass: mean imputation.
    for (auto& row : samples) {
        for (std::size_t d = 0; d < row.size(); ++d) {
            if (std::isnan(row[d])) {
                row[d] = means_[d];
            }
        }
    }

    covariance_ = covariance(samples, ridge);
    auto factor = cholesky(covariance_);
    QFA_ASSERT(factor.has_value(), "ridge-regularised covariance must be SPD");
    cholesky_factor_ = std::move(*factor);
}

std::vector<double> MahalanobisScorer::embed(const Implementation& impl) const {
    std::vector<double> row(attr_ids_.size());
    for (std::size_t d = 0; d < attr_ids_.size(); ++d) {
        const auto v = impl.attribute(attr_ids_[d]);
        row[d] = v ? static_cast<double>(*v) : means_[d];
    }
    return row;
}

double MahalanobisScorer::distance(const Request& request, const Implementation& impl) const {
    // Difference vector over the fitted dimensions: requested ids contribute
    // (request - impl); unconstrained ids contribute 0 (no preference).
    std::vector<double> diff(attr_ids_.size(), 0.0);
    const std::vector<double> impl_row = embed(impl);
    bool any = false;
    for (std::size_t d = 0; d < attr_ids_.size(); ++d) {
        if (auto c = request.find(attr_ids_[d])) {
            diff[d] = static_cast<double>(c->value) - impl_row[d];
            any = true;
        }
    }
    if (!any) {
        return 0.0;  // no shared dimensions: indistinguishable
    }
    // d_M² = diffᵀ Σ⁻¹ diff via the Cholesky solve.
    const std::vector<double> solved = cholesky_solve(cholesky_factor_, diff);
    double d2 = 0.0;
    for (std::size_t d = 0; d < diff.size(); ++d) {
        d2 += diff[d] * solved[d];
    }
    return std::sqrt(std::max(d2, 0.0));
}

double MahalanobisScorer::score(const Request& request, const Implementation& impl) const {
    return 1.0 / (1.0 + distance(request, impl));
}

}  // namespace qfa::cbr
