// Always-built scalar kernel table — the bit-identity reference.
//
// QFA_SIMD_FORCE_SCALAR makes util/simd.hpp select its one-lane wrappers
// regardless of the target flags, so this TU compiles the exact same
// kernels.inl source into plain scalar loops.  Tests and the bench
// self-checks compare every wider table against this one; QFA_SIMD=off
// builds retrieve through it directly.

#define QFA_SIMD_FORCE_SCALAR 1

#include "core/kernels.hpp"

#include "util/simd.hpp"

#define QFA_KERN_NS kern_scalar
#include "core/kernels.inl"
#undef QFA_KERN_NS

namespace qfa::cbr::kern {
const KernelTable& scalar_kernels() noexcept { return kern_scalar::table(); }
}  // namespace qfa::cbr::kern
