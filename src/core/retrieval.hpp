// Case-base retrieval — the "most similar retrieval" algorithm of fig. 6.
//
// Given a request, the retriever locates the requested function type in the
// case base, scores every implementation variant with eq. (1)/(2) and
// returns the ranked candidates.  Two scoring paths are provided:
//
//  * double precision — the reference the paper validated in Matlab;
//  * Q15 fixed point  — arithmetic identical to the hardware datapath
//    (reciprocal multiply, truncation, Q30 accumulation), used as the
//    golden model for the RTL and instruction-set simulators.
//
// Retrieval rules from the paper:
//  * a request attribute missing from an implementation scores s_i = 0
//    ("a missing attribute can be seen as unsatisfiable requirement", §3);
//  * candidates below a similarity threshold can be rejected (§3);
//  * n-best retrieval (§5 outlook) returns the n top candidates so the
//    allocation manager can check feasibility of alternatives.
//
// Thread safety.  A Retriever is a read-only view (four pointers); all
// scoring members are const and touch no shared mutable state, so any
// number of threads may retrieve through the same Retriever — or through
// per-thread copies — concurrently, provided (a) each thread passes its
// own RetrievalScratch and (b) the bound case base / bounds / compiled
// view are not mutated meanwhile.  The serve engine (src/serve) satisfies
// (b) by scoring only immutable epoch-published generations.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/amalgamation.hpp"
#include "core/bounds.hpp"
#include "core/case_base.hpp"
#include "core/compiled.hpp"
#include "core/request.hpp"
#include "core/similarity.hpp"
#include "fixed/q15.hpp"

namespace qfa::cbr {

/// Per-attribute scoring detail — one row of the paper's Table 1.
struct LocalDetail {
    AttrId id;
    AttrValue request_value = 0;
    std::optional<AttrValue> case_value;  ///< nullopt: attribute missing
    std::uint32_t distance = 0;           ///< |A_req - A_cb| (0 when missing)
    std::uint32_t dmax = 0;
    double weight = 0.0;
    double similarity = 0.0;              ///< s_i, 0 when missing
};

/// One scored candidate implementation.
struct Match {
    TypeId type;
    ImplId impl;
    Target target = Target::gpp;
    double similarity = 0.0;              ///< S_global in [0, 1]
    std::vector<LocalDetail> details;     ///< filled when collect_details
};

/// One scored candidate in exact datapath arithmetic.
struct MatchQ15 {
    TypeId type;
    ImplId impl;
    std::uint64_t similarity_q30 = 0;     ///< the hardware accumulator value

    [[nodiscard]] double similarity() const noexcept {
        return static_cast<double>(similarity_q30) /
               (static_cast<double>(fx::Q15::kScale) * static_cast<double>(fx::Q15::kScale));
    }
};

/// Why a retrieval produced no candidates.
enum class RetrievalStatus {
    ok,                 ///< at least one candidate survived
    type_not_found,     ///< requested function type absent from the case base
    all_below_threshold ///< candidates existed but none passed the threshold
};

/// Telemetry of the last retrieve_compiled call's two-phase stage —
/// observability for the tests that pin the widening fallback and for the
/// bench's bytes-scanned accounting.  Never consulted by the algorithm.
struct TwoPhaseStats {
    bool engaged = false;          ///< phase 1 ran over the Q8 tier
    std::size_t rescored = 0;      ///< rows exactly rescored (all widen rounds)
    std::size_t widen_rounds = 0;  ///< times K doubled before the cut was safe
    std::size_t final_k = 0;       ///< candidate count of the accepted cut
};

/// Caller-owned scratch for the compiled retrieval paths.
///
/// One instance per serving thread; every vector is grown once to the
/// high-water mark of the workload and then reused, so steady-state
/// retrieval performs no heap allocation (beyond the returned matches —
/// and the _into variants avoid even those by parking their output here).
struct RetrievalScratch {
    std::vector<double> acc;              ///< per-row weighted-sum state
    std::vector<std::uint64_t> acc_q30;   ///< per-row Q30 accumulators
    std::vector<double> norm_weights;     ///< per-constraint w_i / Σw
    std::vector<std::size_t> columns;     ///< per-constraint column / npos
    std::vector<double> locals;           ///< per-row locals (general path)
    std::vector<fx::Q15> q15_weights;     ///< per-constraint quantized w_i
    WeightQuantScratch quant;             ///< quantizer working buffers
    std::vector<std::uint32_t> topk;      ///< candidate row heap
    std::vector<MatchQ15> q15_out;        ///< score_q15_*_into output

    // Two-phase (Q8 tier) retrieval knobs.  retrieve_compiled runs phase 1
    // over the quantized tier whenever the plan has one, the default
    // weighted-sum amalgamation is in effect, the type has at least
    // two_phase_min_rows implementations, and the phase-1 candidate count
    // K = max(phase1_k, 4 × n_best) is below the row count (otherwise a
    // full exact scan is cheaper).  The knobs tune *performance only*:
    // results are bit-identical to the exact scan at every setting.
    std::size_t phase1_k = 0;              ///< extra K floor; 0 = 4 × n_best
    std::size_t two_phase_min_rows = 128;  ///< smaller plans scan exact directly

    std::vector<double> approx;            ///< phase-1 scores (Q8 tier)
    std::vector<double> block_err;         ///< per-block score error bound
    std::vector<std::uint32_t> survivors;  ///< phase-2 exact-rescore rows
    std::vector<double> suffix_bound;      ///< pool-tail rejected-row bounds
    TwoPhaseStats two_phase;               ///< telemetry of the last call
};

/// Retrieval knobs.
struct RetrievalOptions {
    std::size_t n_best = 1;          ///< how many ranked candidates to return
    double threshold = 0.0;          ///< reject candidates with S < threshold
    bool collect_details = false;    ///< fill Match::details (Table 1 rows)
    LocalMetric metric = LocalMetric::manhattan;
};

/// Result of a retrieval: ranked candidates plus effort counters.
struct RetrievalResult {
    RetrievalStatus status = RetrievalStatus::type_not_found;
    std::vector<Match> matches;      ///< descending by similarity, then ImplId
    std::size_t impls_considered = 0;
    std::size_t attrs_compared = 0;  ///< request-attribute lookups performed

    [[nodiscard]] bool ok() const noexcept { return status == RetrievalStatus::ok; }
    [[nodiscard]] const Match& best() const;
};

/// Backend-agnostic result assembly — the one place Q30-datapath backends
/// (mblaze soft-core, RTL device model) turn ranked hardware candidates
/// into a RetrievalResult with the exact status/threshold/ranking semantics
/// of the double-precision paths.  `ranked` must be descending by
/// similarity_q30 with ties towards the lower ImplId (what both datapath
/// models produce); candidates below options.threshold are rejected with
/// the same `S < threshold` rule retrieve() applies, targets are looked up
/// from the tree, and the status mirrors retrieve_compiled's: missing type
/// -> type_not_found, zero implementations or nothing surviving the
/// threshold -> all_below_threshold.  Effort counters follow the compiled
/// path's accounting (impls_considered = row count, attrs_compared = rows x
/// constraints) so modeled results stay comparable across backends.
[[nodiscard]] RetrievalResult assemble_result_q30(const CaseBase& cb,
                                                  const Request& request,
                                                  std::span<const MatchQ15> ranked,
                                                  const RetrievalOptions& options);

/// Documented error bound of the Q15/Q30 datapath vs the double-precision
/// weighted sum for one request:
///
///     |S_q30 - S_exact| <= Σ_i ŵ_i·local_similarity_error_bound(dmax_i)
///                          + Σ_i |ŵ_i - w_i|
///
/// where w are the normalized weights, ŵ their Q15 quantization
/// (quantize_weights' largest-remainder scheme — the very values the
/// packed request image carries) and the per-local bound is
/// fx::local_similarity_error_bound.  Every backend that scores through
/// the hardware arithmetic (mblaze, device) reports exactly this bound;
/// the conformance suite and the heterogeneous bench assert against it.
[[nodiscard]] double modeled_similarity_error_bound(const Request& request,
                                                    const BoundsTable& bounds);

/// Bit-identity of two retrieval results: same status and effort counters,
/// same ranked (type, impl, target) sequence, bitwise-equal similarities,
/// and equal detail rows (bitwise on their doubles) when collected.  This
/// is *the* golden-model comparison — the compiled fast paths, the serve
/// engine and the self-checking benches all claim equality in exactly this
/// sense, so they all share this one definition.
[[nodiscard]] bool identical_results(const RetrievalResult& a,
                                     const RetrievalResult& b) noexcept;

/// Reference retriever over the in-memory case base.
class Retriever {
public:
    /// Binds case base and design-time bounds.  The amalgamation defaults to
    /// the paper's weighted sum; a different one may be injected for the
    /// ablation benches.  All referenced objects must outlive the retriever.
    Retriever(const CaseBase& cb, const BoundsTable& bounds,
              const Amalgamation* amalgamation = nullptr);

    /// Same, with a pre-compiled columnar view of the identical case base,
    /// enabling the retrieve_compiled / retrieve_batch / score_q15_compiled
    /// fast paths.  The compiled view must have been built from `cb`.
    Retriever(const CaseBase& cb, const BoundsTable& bounds,
              const CompiledCaseBase& compiled,
              const Amalgamation* amalgamation = nullptr);

    /// Attaches a compiled view after construction (same contract).
    void bind_compiled(const CompiledCaseBase& compiled);

    [[nodiscard]] bool has_compiled() const noexcept { return compiled_ != nullptr; }

    /// Scores every implementation of the requested type.  The request is
    /// normalized internally (weights rescaled to Σ w = 1).
    [[nodiscard]] RetrievalResult retrieve(const Request& request,
                                           const RetrievalOptions& options = {}) const;

    /// Columnar fast path: scores against the compiled plan instead of the
    /// tree and selects the n best with a bounded partial heap keyed on
    /// (similarity desc, ImplId asc) instead of a full stable_sort.  The
    /// result (matches, ranks, statuses, details) is bit-identical to
    /// retrieve(): identical floating-point operations in identical order,
    /// just over the structure-of-arrays layout.  Requires a bound compiled
    /// view.  `scratch` (optional) removes all steady-state allocations
    /// apart from the returned matches.
    ///
    /// Large plans take the *two-phase* route behind this same entry point:
    /// an approximate top-K scan of the plan's Q8 quantized tier (~1.25
    /// bytes/row/constraint instead of 4) selects candidates, which are
    /// then exactly rescored in f64.  A conservative per-block
    /// quantization-error bound guards the cut — whenever the exact scores
    /// of the survivors cannot prove every rejected row is strictly out of
    /// the top n_best, K widens and the scan falls back toward the full
    /// rescore — so the returned matches are bit-identical to the exact
    /// scan by construction, never by luck (see RetrievalScratch's
    /// two-phase knobs and docs/ARCHITECTURE.md §2).
    [[nodiscard]] RetrievalResult retrieve_compiled(
        const Request& request, const RetrievalOptions& options = {},
        RetrievalScratch* scratch = nullptr) const;

    /// Batched fast path: runs retrieve_compiled over every request while
    /// reusing one caller-owned scratch, amortizing weight normalization /
    /// column-map buffers across the batch.  results[i] is bit-identical to
    /// retrieve(requests[i], options).
    [[nodiscard]] std::vector<RetrievalResult> retrieve_batch(
        std::span<const Request> requests, const RetrievalOptions& options,
        RetrievalScratch& scratch) const;

    /// Exact datapath scoring: Q15 local similarities, Q15 quantized
    /// weights, Q30 accumulation, ties broken towards the *first* candidate
    /// in list order — precisely what the fig. 6/7 hardware does.  Returns
    /// candidates in case-base order (not ranked); the best candidate is the
    /// max by (similarity_q30, earlier-in-list).
    [[nodiscard]] std::vector<MatchQ15> score_q15(const Request& request) const;

    /// Scratch-routed tree scoring: weight normalization, quantization and
    /// the scored list all live in caller-owned scratch (like
    /// retrieve_compiled does for the double path), so repeated calls
    /// perform no steady-state allocation.  The returned span aliases
    /// `scratch.q15_out` and is invalidated by the next _into call.
    std::span<const MatchQ15> score_q15_into(const Request& request,
                                             RetrievalScratch& scratch) const;

    /// Q15 datapath scoring over the compiled columns (shared with the
    /// double-precision fast path): same layout, same per-constraint
    /// traversal, results exactly equal to score_q15().  Requires a bound
    /// compiled view.  The column loop runs through the runtime-dispatched
    /// SIMD kernels (core/kernels.hpp) — exact integer arithmetic, so the
    /// equality with score_q15() holds at any lane width.
    [[nodiscard]] std::vector<MatchQ15> score_q15_compiled(
        const Request& request, RetrievalScratch* scratch = nullptr) const;

    /// Scratch-routed variant of score_q15_compiled: same contract as
    /// score_q15_into, no output allocation.
    std::span<const MatchQ15> score_q15_compiled_into(const Request& request,
                                                      RetrievalScratch& scratch) const;

    /// Best candidate under Q15 arithmetic (hardware tie-breaking), or
    /// nullopt when the type is unknown/empty.  `scratch` (optional)
    /// removes all per-call allocations.
    [[nodiscard]] std::optional<MatchQ15> retrieve_q15(
        const Request& request, RetrievalScratch* scratch = nullptr) const;

    [[nodiscard]] const CaseBase& case_base() const noexcept { return *cb_; }
    [[nodiscard]] const BoundsTable& bounds() const noexcept { return *bounds_; }

private:
    RetrievalResult retrieve_compiled_into(const Request& request,
                                           const RetrievalOptions& options,
                                           RetrievalScratch& scratch) const;

    const CaseBase* cb_;
    const BoundsTable* bounds_;
    const Amalgamation* amalgamation_;       ///< nullptr = weighted sum
    const CompiledCaseBase* compiled_ = nullptr;  ///< nullptr = tree only
};

}  // namespace qfa::cbr
