// SIMD-dispatched column kernels of the compiled retrieval datapath.
//
// The three hot loops of core/retrieval.cpp — the double-precision
// manhattan and squared-distance weighted accumulations of
// retrieve_compiled_into and the Q15 AND-mask scoring loop of
// score_q15_compiled — are pure vertical loops over one padded plan
// column (core/compiled.hpp pads every column to TypePlan::kRowAlign
// rows, so the kernels never need a scalar tail).  Each kernel is
// compiled once per instruction set from the single generic source
// core/kernels.inl over the util/simd.hpp wrappers:
//
//   * scalar_kernels() — plain C++, always built (core/kernels_scalar.cpp);
//     the reference the bit-identity tests and bench self-checks compare
//     against, and the QFA_SIMD=off escape hatch.
//   * base_kernels()   — whatever ISA the translation unit's target flags
//     select (SSE2 on baseline x86-64, NEON on AArch64, AVX2 under
//     -march=native, scalar elsewhere).
//   * avx2_kernels()   — force-compiled with AVX2 codegen on x86 even in a
//     baseline build (core/kernels_avx2.cpp gets per-source -mavx2);
//     nullptr when the toolchain or QFA_SIMD=off ruled it out.
//
// active_kernels() runtime-dispatches once per process: the AVX2 table
// when the CPU reports AVX2, otherwise the base table (which is always
// safe to execute — it was compiled with the same flags as the rest of
// the binary).  With QFA_SIMD=off every table is the scalar one.
//
// Bit-identity contract: for identical inputs, every table produces
// bitwise-equal accumulators (see util/simd.hpp for why vector width
// cannot change per-row FP operation order).  tests/core/simd_kernel_test
// pins this across the padded-tail edge cases; bench_compiled_retrieval
// re-proves it at startup before timing anything.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace qfa::cbr::kern {

/// Row count of one Q8 quantization block: the unit at which the
/// quantized plan tier carries one f32 scale (and one measured error
/// bound).  Must equal TypePlan::kQuantBlock — core/retrieval.cpp
/// static_asserts the two constants agree — and be a multiple of
/// simd::kRowBlock so a block is always a whole number of vectors.
inline constexpr std::size_t kQ8Block = 32;

/// One ISA's set of column kernels.  All of them walk `padded_rows` slots
/// (a multiple of TypePlan::kRowAlign, or 0) of one column and add into
/// the caller's per-row accumulators; padded tail slots hold value 0 and
/// presence 0 (code 0 in the Q8 tier), so they accumulate exactly
/// +0.0 / 0.
struct KernelTable {
    const char* isa;  ///< "avx2" / "sse2" / "neon" / "scalar"

    /// acc[r] += weight * s_r with s_r = eq. (1) manhattan similarity of
    /// (request_value, values[r]) under `divisor` = 1 + dmax, AND-masked
    /// by mask[r] (0xFFFF present / 0 sentinel).
    void (*manhattan)(double* acc, const std::uint16_t* values,
                      const std::uint16_t* mask, std::size_t padded_rows,
                      std::uint16_t request_value, double divisor, double weight);

    /// Same with the squared-normalized-distance local measure
    /// (1 - ratio^2, the E13 Euclidean-flavour ablation).
    void (*squared)(double* acc, const std::uint16_t* values,
                    const std::uint16_t* mask, std::size_t padded_rows,
                    std::uint16_t request_value, double divisor, double weight);

    /// acc[r] += u64(s_r & mask[r]) * weight_raw with s_r the fig. 7 Q15
    /// local similarity under the pre-quantized reciprocal — the Q30
    /// accumulation of score_q15_compiled.
    void (*q15)(std::uint64_t* acc, const std::uint16_t* values,
                const std::uint16_t* mask, std::size_t padded_rows,
                std::uint16_t request_value, std::uint16_t reciprocal_raw,
                std::uint16_t weight_raw);

    /// Phase-1 approximate scoring over the Q8 quantized tier: for every
    /// row, dequantizes v̂ = scale[r / kQ8Block] × (code − 1) — exact in
    /// f64, a 24-bit f32 significand times an integer ≤ 254 — and
    /// accumulates acc[r] += weight × ŝ_r with ŝ_r the eq. (1) manhattan
    /// similarity of (request_value, v̂) under `divisor` = 1 + dmax.
    /// Code 0 means "absent" (and padding): the lane mask zeroes ŝ_r
    /// exactly like the present_mask does on the exact tier.  `scales`
    /// points at the column's per-block f32 scales (one per kQ8Block
    /// rows).  Like every kernel here, the per-row arithmetic is
    /// bit-identical across ISAs.
    void (*q8_manhattan)(double* acc, const std::uint8_t* codes, const float* scales,
                         std::size_t padded_rows, std::uint16_t request_value,
                         double divisor, double weight);

    /// Same over the squared-normalized-distance local measure.
    void (*q8_squared)(double* acc, const std::uint8_t* codes, const float* scales,
                       std::size_t padded_rows, std::uint16_t request_value,
                       double divisor, double weight);
};

/// The always-available scalar reference table.
[[nodiscard]] const KernelTable& scalar_kernels() noexcept;

/// The table matching this binary's baseline target flags.
[[nodiscard]] const KernelTable& base_kernels() noexcept;

/// The force-compiled AVX2 table, or nullptr when it was not built
/// (non-x86 toolchain, or QFA_SIMD=off).
[[nodiscard]] const KernelTable* avx2_kernels() noexcept;

/// Runtime-dispatched table the retrieval fast paths score through:
/// AVX2 when both compiled in and reported by the CPU, else the base
/// table; always the scalar table under QFA_SIMD=off.
[[nodiscard]] const KernelTable& active_kernels() noexcept;

/// Every distinct table available in this binary (scalar first).  The
/// bit-identity tests and the bench self-checks sweep this list so no
/// compiled-in ISA can escape verification.
[[nodiscard]] std::span<const KernelTable* const> available_kernels() noexcept;

}  // namespace qfa::cbr::kern
