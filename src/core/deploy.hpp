// Deployment metadata of an implementation variant.
//
// Beyond its QoS attribute list, each catalogue entry carries the data the
// allocation layers (fig. 1) need: how much configuration data must be
// fetched from the FLASH repository, what device resources the variant
// occupies while active, and its power figures.  The CBR retrieval itself
// never looks at this block — it is what the *feasibility check* (§3)
// consumes after retrieval has ranked the candidates.
#pragma once

#include <cstdint>

#include "core/ids.hpp"

namespace qfa::cbr {

/// Device resources an implementation occupies while instantiated.
///
/// FPGA variants consume slices/BRAMs/multipliers inside one reconfigurable
/// slot; DSP and CPU variants consume a utilization share (percent) of their
/// processor.  Unused fields stay zero.
struct ResourceDemand {
    std::uint32_t clb_slices = 0;
    std::uint32_t brams = 0;
    std::uint32_t multipliers = 0;
    std::uint32_t cpu_load_pct = 0;  ///< share of a GPP, 0..100
    std::uint32_t dsp_load_pct = 0;  ///< share of a DSP, 0..100

    friend constexpr bool operator==(const ResourceDemand&,
                                     const ResourceDemand&) noexcept = default;
};

/// Per-variant deployment data consumed by the allocation manager.
struct ImplMeta {
    /// Size of the configuration data in the repository: FPGA partial
    /// bitstream, DSP kernel image, or CPU opcode (bytes).
    std::uint32_t config_bytes = 0;

    /// Device resources held while the function is instantiated.
    ResourceDemand demand;

    /// Static power drawn while instantiated (mW).
    std::uint32_t static_power_mw = 0;

    /// Additional dynamic power while actively processing (mW).
    std::uint32_t dynamic_power_mw = 0;

    friend constexpr bool operator==(const ImplMeta&, const ImplMeta&) noexcept = default;
};

}  // namespace qfa::cbr
