// Force-compiled AVX2 kernel table.
//
// CMake gives this one source file -mavx2 on x86 toolchains (see the
// QFA_SIMD block in the top-level CMakeLists), so a baseline x86-64 build
// still carries 4-lane kernels that active_kernels() runtime-dispatches
// onto after checking cpuid — the ggml-style "compile wide, gate at
// runtime" pattern.  Only the kernel bodies live behind the gate; nothing
// else in the binary may require AVX2.  On toolchains where the flag is
// unavailable (or under QFA_SIMD=off) __AVX2__ is absent here and the
// accessor degrades to nullptr.

#include "core/kernels.hpp"

#if defined(__AVX2__) && !defined(QFA_SIMD_DISABLED)

#include "util/simd.hpp"

#define QFA_KERN_NS kern_avx2
#include "core/kernels.inl"
#undef QFA_KERN_NS

namespace qfa::cbr::kern {
const KernelTable* avx2_kernels() noexcept { return &kern_avx2::table(); }
}  // namespace qfa::cbr::kern

#else

namespace qfa::cbr::kern {
const KernelTable* avx2_kernels() noexcept { return nullptr; }
}  // namespace qfa::cbr::kern

#endif
