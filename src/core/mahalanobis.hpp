// Mahalanobis-distance global similarity — the alternative §2.2 rejects.
//
// "A well known method comes from statistical decision theory and determines
// the Mahalanobis distance by calculating the co-variance matrix of the
// whole set of function attributes.  This method is very effective
// concerning the results but the computational efforts would be too large so
// we decided to apply Manhattan distance metrics."
//
// We implement it anyway so the cost/quality trade-off can be measured
// (experiment E13): the scorer is fitted once per case base (covariance over
// all implementation attribute vectors, ridge-regularised, Cholesky
// factorised) and then scores a request against an implementation in
// O(n²) per candidate — versus O(n) for eq. (1)/(2).
#pragma once

#include <optional>
#include <vector>

#include "core/case_base.hpp"
#include "core/linalg.hpp"
#include "core/request.hpp"

namespace qfa::cbr {

/// Fitted Mahalanobis similarity scorer.
class MahalanobisScorer {
public:
    /// Fits the scorer on every implementation attribute vector in the case
    /// base.  Attribute ids are the union over the whole tree; missing
    /// attributes are imputed with the column mean.  `ridge` keeps the
    /// covariance invertible on degenerate catalogues.
    ///
    /// Throws std::invalid_argument when the case base is empty.
    explicit MahalanobisScorer(const CaseBase& cb, double ridge = 1e-3);

    /// Similarity in (0, 1]: 1 / (1 + d_M(request, impl)), where d_M is the
    /// Mahalanobis distance over the shared attribute dimensions (request
    /// constraints absent from the fitted dimension set are ignored;
    /// implementation attributes missing a requested id count as maximally
    /// distant through mean imputation).
    [[nodiscard]] double score(const Request& request, const Implementation& impl) const;

    /// Raw Mahalanobis distance (for tests and benches).
    [[nodiscard]] double distance(const Request& request, const Implementation& impl) const;

    [[nodiscard]] std::size_t dimension() const noexcept { return attr_ids_.size(); }
    [[nodiscard]] const Matrix& covariance_matrix() const noexcept { return covariance_; }

private:
    /// Dense vector over the fitted dimensions for one implementation,
    /// mean-imputed where an attribute id is absent.
    [[nodiscard]] std::vector<double> embed(const Implementation& impl) const;

    std::vector<AttrId> attr_ids_;   ///< fitted dimensions, ascending
    std::vector<double> means_;      ///< per-dimension mean (imputation)
    Matrix covariance_;              ///< ridge-regularised covariance
    Matrix cholesky_factor_;         ///< L with cov = L·Lᵀ
};

}  // namespace qfa::cbr
