#include "core/compiled.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace qfa::cbr {

std::size_t TypePlan::column_of(AttrId id) const noexcept {
    const auto it = std::lower_bound(attr_ids.begin(), attr_ids.end(), id);
    if (it != attr_ids.end() && *it == id) {
        return static_cast<std::size_t>(it - attr_ids.begin());
    }
    return npos;
}

void TypePlan::map_columns(std::span<const RequestAttribute> constraints,
                           std::vector<std::size_t>& out) const {
    out.resize(constraints.size());
    std::size_t c = 0;
    for (std::size_t i = 0; i < constraints.size(); ++i) {
        while (c < attr_ids.size() && attr_ids[c] < constraints[i].id) {
            ++c;
        }
        out[i] = (c < attr_ids.size() && attr_ids[c] == constraints[i].id) ? c : npos;
    }
}

CompiledCaseBase::CompiledCaseBase(const CaseBase& cb, const BoundsTable& bounds)
    : source_(&cb), bounds_(&bounds) {
    plans_.reserve(cb.types().size());
    for (const FunctionType& type : cb.types()) {
        TypePlan plan;
        plan.id = type.id;
        plan.impl_count = type.impls.size();
        plan.impl_ids.reserve(plan.impl_count);
        plan.targets.reserve(plan.impl_count);

        // Union of attribute ids over the type's implementations (each
        // implementation list is strictly ascending, so a set-union style
        // merge would work too; sort+unique keeps it simple at compile
        // time, which runs once).
        for (const Implementation& impl : type.impls) {
            plan.impl_ids.push_back(impl.id);
            plan.targets.push_back(impl.target);
            for (const Attribute& attr : impl.attributes) {
                plan.attr_ids.push_back(attr.id);
            }
        }
        std::sort(plan.attr_ids.begin(), plan.attr_ids.end());
        plan.attr_ids.erase(std::unique(plan.attr_ids.begin(), plan.attr_ids.end()),
                            plan.attr_ids.end());

        const std::size_t columns = plan.attr_ids.size();
        plan.dmax.reserve(columns);
        plan.divisor.reserve(columns);
        plan.reciprocal.reserve(columns);
        for (const AttrId id : plan.attr_ids) {
            const std::uint32_t d = bounds.dmax(id);
            plan.dmax.push_back(d);
            plan.divisor.push_back(1.0 + static_cast<double>(d));
            plan.reciprocal.push_back(bounds.reciprocal(id));
        }

        plan.values.assign(columns * plan.impl_count, AttrValue{0});
        plan.present.assign(columns * plan.impl_count, 0.0);
        plan.present_mask.assign(columns * plan.impl_count, std::uint16_t{0});
        for (std::size_t r = 0; r < plan.impl_count; ++r) {
            for (const Attribute& attr : type.impls[r].attributes) {
                const std::size_t c = plan.column_of(attr.id);
                QFA_ASSERT(c != TypePlan::npos, "attribute id must be in the union");
                const std::size_t slot = c * plan.impl_count + r;
                plan.values[slot] = attr.value;
                plan.present[slot] = 1.0;
                plan.present_mask[slot] = 0xFFFFU;
            }
        }
        plans_.push_back(std::move(plan));
    }
}

const TypePlan* CompiledCaseBase::find(TypeId id) const noexcept {
    const auto it = std::lower_bound(
        plans_.begin(), plans_.end(), id,
        [](const TypePlan& plan, TypeId target) { return plan.id < target; });
    if (it != plans_.end() && it->id == id) {
        return &*it;
    }
    return nullptr;
}

CompiledStats CompiledCaseBase::stats() const noexcept {
    CompiledStats stats;
    stats.type_count = plans_.size();
    for (const TypePlan& plan : plans_) {
        stats.impl_count += plan.impl_count;
        stats.column_count += plan.attr_ids.size();
        stats.value_slots += plan.values.size();
        for (const double p : plan.present) {
            if (p == 0.0) {
                ++stats.sentinel_slots;
            }
        }
    }
    return stats;
}

}  // namespace qfa::cbr
