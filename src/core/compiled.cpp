#include "core/compiled.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace qfa::cbr {

std::size_t TypePlan::column_of(AttrId id) const noexcept {
    const auto it = std::lower_bound(attr_ids.begin(), attr_ids.end(), id);
    if (it != attr_ids.end() && *it == id) {
        return static_cast<std::size_t>(it - attr_ids.begin());
    }
    return npos;
}

void TypePlan::map_columns(std::span<const RequestAttribute> constraints,
                           std::vector<std::size_t>& out) const {
    out.resize(constraints.size());
    std::size_t c = 0;
    for (std::size_t i = 0; i < constraints.size(); ++i) {
        while (c < attr_ids.size() && attr_ids[c] < constraints[i].id) {
            ++c;
        }
        out[i] = (c < attr_ids.size() && attr_ids[c] == constraints[i].id) ? c : npos;
    }
}

namespace {

/// Re-reads the supplemental column metadata from the bounds table — the
/// exact values a fresh compile would bake in.
void refresh_column_metadata(TypePlan& plan, const BoundsTable& bounds) {
    const std::size_t columns = plan.attr_ids.size();
    plan.dmax.resize(columns);
    plan.divisor.resize(columns);
    plan.reciprocal.resize(columns);
    for (std::size_t c = 0; c < columns; ++c) {
        const std::uint32_t d = bounds.dmax(plan.attr_ids[c]);
        plan.dmax[c] = d;
        plan.divisor[c] = 1.0 + static_cast<double>(d);
        plan.reciprocal[c] = bounds.reciprocal(plan.attr_ids[c]);
    }
}

/// True when a plan's supplemental columns already hold exactly what a
/// fresh compile against `bounds` would bake in — the copy-on-write test
/// of patched(): such a plan can be *shared* with the successor epoch
/// instead of cloned.  divisor is derived deterministically from dmax
/// (1.0 + double(dmax)), so comparing dmax and the quantized reciprocal
/// covers all three columns bit-exactly.
bool metadata_current(const TypePlan& plan, const BoundsTable& bounds) {
    for (std::size_t c = 0; c < plan.attr_ids.size(); ++c) {
        if (plan.dmax[c] != bounds.dmax(plan.attr_ids[c]) ||
            plan.reciprocal[c] != bounds.reciprocal(plan.attr_ids[c])) {
            return false;
        }
    }
    return true;
}

/// Quantizes the Q8 tier of column `c` from block `first_block` to the
/// end, reading the already-written values/present_mask payload.  A block's
/// codes, scale and error bound are a pure function of its kQuantBlock
/// (value, presence) pairs, so any two call sites producing the same
/// payload produce bit-identical Q8 tiers — the property that lets
/// patched() splice-copy unchanged blocks and the tests compare patched
/// plans against fresh compiles byte for byte.
///
/// Encoding, per block: scale = f32(block_max / 254.0) (0 when the block
/// has no present value above 0), code = 1 + lround(value / f64(scale))
/// for present rows (∈ [1, 255] — block_max/scale ≤ 254·(1 + 2⁻²³) rounds
/// to at most 254), code 0 for absent and padding rows.  Dequantization
/// f64(scale) × (code − 1) is exact in double (24-bit significand × an
/// integer ≤ 254 needs ≤ 32 bits), so the stored error bound — the
/// measured max |value − dequant| over present rows, rounded up to f32 —
/// really does bound every row of the block.
void quantize_column_blocks(TypePlan& plan, std::size_t c, std::size_t first_block) {
    const std::size_t blocks = plan.q8_blocks();
    for (std::size_t b = first_block; b < blocks; ++b) {
        const std::size_t begin = b * TypePlan::kQuantBlock;
        const std::size_t end =
            std::min(plan.row_stride, begin + TypePlan::kQuantBlock);
        std::uint32_t vmax = 0;
        for (std::size_t r = begin; r < end; ++r) {
            const std::size_t s = plan.slot(c, r);
            if (plan.present_mask[s] != 0 && plan.values[s] > vmax) {
                vmax = plan.values[s];
            }
        }
        const float scale =
            vmax > 0 ? static_cast<float>(static_cast<double>(vmax) / 254.0) : 0.0f;
        const double scale_d = static_cast<double>(scale);
        double err = 0.0;
        for (std::size_t r = begin; r < end; ++r) {
            const std::size_t s = plan.slot(c, r);
            if (plan.present_mask[s] == 0) {
                plan.q8[s] = 0;
                continue;
            }
            const double v = static_cast<double>(plan.values[s]);
            const long code = scale_d > 0.0 ? 1 + std::lround(v / scale_d) : 1;
            QFA_ASSERT(code >= 1 && code <= 255, "Q8 code must fit [1, 255]");
            plan.q8[s] = static_cast<std::uint8_t>(code);
            const double vhat = scale_d * static_cast<double>(code - 1);
            err = std::max(err, std::abs(v - vhat));
        }
        float err_f = static_cast<float>(err);
        if (static_cast<double>(err_f) < err) {
            err_f = std::nextafterf(err_f, std::numeric_limits<float>::infinity());
        }
        plan.q8_scale[c * blocks + b] = scale;
        plan.q8_err[c * blocks + b] = err_f;
    }
}

/// Builds the whole Q8 tier of a freshly filled plan.
void quantize_q8_tier(TypePlan& plan) {
    const std::size_t columns = plan.attr_ids.size();
    plan.q8.assign(columns * plan.row_stride, std::uint8_t{0});
    plan.q8_scale.assign(columns * plan.q8_blocks(), 0.0f);
    plan.q8_err.assign(columns * plan.q8_blocks(), 0.0f);
    for (std::size_t c = 0; c < columns; ++c) {
        quantize_column_blocks(plan, c, 0);
    }
}

/// Full single-type compilation (the constructor's per-type step).
TypePlan compile_type_plan(const FunctionType& type, const BoundsTable& bounds) {
    TypePlan plan;
    plan.id = type.id;
    plan.impl_count = type.impls.size();
    plan.impl_ids.reserve(plan.impl_count);
    plan.targets.reserve(plan.impl_count);

    // Union of attribute ids over the type's implementations (each
    // implementation list is strictly ascending, so a set-union style
    // merge would work too; sort+unique keeps it simple at compile
    // time, which runs once).
    for (const Implementation& impl : type.impls) {
        plan.impl_ids.push_back(impl.id);
        plan.targets.push_back(impl.target);
        for (const Attribute& attr : impl.attributes) {
            plan.attr_ids.push_back(attr.id);
        }
    }
    std::sort(plan.attr_ids.begin(), plan.attr_ids.end());
    plan.attr_ids.erase(std::unique(plan.attr_ids.begin(), plan.attr_ids.end()),
                        plan.attr_ids.end());

    refresh_column_metadata(plan, bounds);

    // Padded geometry: every column spans row_stride slots so the SIMD
    // kernels stream whole vectors; the tail rows keep the neutral
    // sentinel (value 0, mask 0) and accumulate exactly zero.
    plan.row_stride = TypePlan::padded(plan.impl_count);
    const std::size_t columns = plan.attr_ids.size();
    plan.values.assign(columns * plan.row_stride, AttrValue{0});
    plan.present_mask.assign(columns * plan.row_stride, std::uint16_t{0});
    for (std::size_t r = 0; r < plan.impl_count; ++r) {
        for (const Attribute& attr : type.impls[r].attributes) {
            const std::size_t c = plan.column_of(attr.id);
            QFA_ASSERT(c != TypePlan::npos, "attribute id must be in the union");
            plan.values[plan.slot(c, r)] = attr.value;
            plan.present_mask[plan.slot(c, r)] = 0xFFFFU;
        }
    }
    quantize_q8_tier(plan);
    return plan;
}

/// Row-splice fast path: `type` is `old` plus exactly one inserted
/// implementation.  Copies every untouched column slice with bulk
/// std::copy (no per-attribute scatter, no tree walk) and writes the one
/// new row on top.  Returns false when the shape change is anything other
/// than a single insertion — the caller then recompiles the type.
bool patch_single_insert(const TypePlan& old, const FunctionType& type,
                         TypePlan& out) {
    const std::size_t rows = old.impl_count;
    if (type.impls.size() != rows + 1) {
        return false;
    }
    // Locate the inserted row: first divergence of the ascending id lists,
    // after which the tails must agree exactly.
    std::size_t r0 = 0;
    while (r0 < rows && old.impl_ids[r0] == type.impls[r0].id) {
        ++r0;
    }
    for (std::size_t r = r0; r < rows; ++r) {
        if (old.impl_ids[r] != type.impls[r + 1].id) {
            return false;
        }
    }
    const Implementation& inserted = type.impls[r0];

    out.id = old.id;
    out.impl_count = rows + 1;
    out.impl_ids.reserve(rows + 1);
    out.targets.reserve(rows + 1);
    out.impl_ids.assign(old.impl_ids.begin(), old.impl_ids.begin() + r0);
    out.targets.assign(old.targets.begin(), old.targets.begin() + r0);
    out.impl_ids.push_back(inserted.id);
    out.targets.push_back(inserted.target);
    out.impl_ids.insert(out.impl_ids.end(), old.impl_ids.begin() + r0, old.impl_ids.end());
    out.targets.insert(out.targets.end(), old.targets.begin() + r0, old.targets.end());

    // Merged column set: the old union plus whatever the new variant adds
    // (both sides ascending).
    out.attr_ids.reserve(old.attr_ids.size() + inserted.attributes.size());
    std::size_t a = 0;
    for (const Attribute& attr : inserted.attributes) {
        while (a < old.attr_ids.size() && old.attr_ids[a] < attr.id) {
            out.attr_ids.push_back(old.attr_ids[a++]);
        }
        if (a < old.attr_ids.size() && old.attr_ids[a] == attr.id) {
            ++a;
        }
        out.attr_ids.push_back(attr.id);
    }
    out.attr_ids.insert(out.attr_ids.end(), old.attr_ids.begin() + a, old.attr_ids.end());

    // Single-pass append build: every payload byte is written exactly once
    // (no zero-fill-then-overwrite), which is what buys the >= 10x over a
    // full recompile at large row counts.  Both sides use the padded
    // geometry: source columns are read at the old stride, destination
    // columns are written at the new stride with the padded tail re-zeroed
    // (the tail length can shrink by up to kRowAlign-1 when the insertion
    // crosses an alignment boundary).
    const std::size_t columns = out.attr_ids.size();
    const std::size_t out_rows = rows + 1;
    out.row_stride = TypePlan::padded(out_rows);
    const std::size_t pad = out.row_stride - out_rows;
    out.values.reserve(columns * out.row_stride);
    out.present_mask.reserve(columns * out.row_stride);
    for (std::size_t c = 0; c < columns; ++c) {
        const std::size_t oc = old.column_of(out.attr_ids[c]);
        if (oc == TypePlan::npos) {
            // Brand-new column: sentinels everywhere; row r0 is fixed below.
            out.values.insert(out.values.end(), out.row_stride, AttrValue{0});
            out.present_mask.insert(out.present_mask.end(), out.row_stride,
                                    std::uint16_t{0});
            continue;
        }
        const auto splice = [&](const auto& src_vec, auto& dst_vec, auto sentinel) {
            const auto* src = src_vec.data() + oc * old.row_stride;
            dst_vec.insert(dst_vec.end(), src, src + r0);
            dst_vec.push_back(sentinel);  // row r0 placeholder, fixed below
            dst_vec.insert(dst_vec.end(), src + r0, src + rows);
            dst_vec.insert(dst_vec.end(), pad, sentinel);  // padded tail
        };
        splice(old.values, out.values, AttrValue{0});
        splice(old.present_mask, out.present_mask, std::uint16_t{0});
    }
    for (const Attribute& attr : inserted.attributes) {
        const std::size_t c = out.column_of(attr.id);
        QFA_ASSERT(c != TypePlan::npos, "inserted attribute id must be in the union");
        out.values[out.slot(c, r0)] = attr.value;
        out.present_mask[out.slot(c, r0)] = 0xFFFFU;
    }

    // Q8 tier of the spliced plan.  The insertion shifts every row >= r0
    // down by one, so the quantization blocks from r0's block onward see
    // different (value, presence) content and must be requantized; the
    // blocks wholly below r0 see bit-identical content at the same block
    // offsets and are copied verbatim (codes, scale and error bound) —
    // quantization is a pure per-block function, so this equals the fresh
    // compile byte for byte.
    const std::size_t blocks = out.q8_blocks();
    out.q8.assign(columns * out.row_stride, std::uint8_t{0});
    out.q8_scale.assign(columns * blocks, 0.0f);
    out.q8_err.assign(columns * blocks, 0.0f);
    const std::size_t split_block = r0 / TypePlan::kQuantBlock;
    for (std::size_t c = 0; c < columns; ++c) {
        const std::size_t oc = old.column_of(out.attr_ids[c]);
        std::size_t first = 0;
        if (oc != TypePlan::npos) {
            const std::size_t old_blocks = old.q8_blocks();
            first = std::min(split_block, old_blocks);
            std::copy_n(old.q8.data() + oc * old.row_stride,
                        first * TypePlan::kQuantBlock, out.q8.data() + c * out.row_stride);
            std::copy_n(old.q8_scale.data() + oc * old_blocks, first,
                        out.q8_scale.data() + c * blocks);
            std::copy_n(old.q8_err.data() + oc * old_blocks, first,
                        out.q8_err.data() + c * blocks);
        }
        quantize_column_blocks(out, c, first);
    }
    return true;
}

}  // namespace

CompiledCaseBase::CompiledCaseBase(const CaseBase& cb, const BoundsTable& bounds)
    : source_(&cb), bounds_(&bounds) {
    plans_.reserve(cb.types().size());
    for (const FunctionType& type : cb.types()) {
        plans_.push_back(std::make_shared<const TypePlan>(compile_type_plan(type, bounds)));
    }
}

CompiledCaseBase CompiledCaseBase::patched(const CompiledCaseBase& previous,
                                           const CaseBase& cb, const BoundsTable& bounds,
                                           TypeId changed) {
    CompiledCaseBase next;
    next.source_ = &cb;
    next.bounds_ = &bounds;

    // Selective rebuild: an untouched plan whose supplemental columns still
    // match `bounds` is *shared* copy-on-write (one shared_ptr copy); a
    // plan a widened design-global bound reaches into is cloned with
    // refreshed metadata (payload copied wholesale, no tree walk); the
    // changed plan is spliced straight from its predecessor — never copied
    // first — or recompiled when the shape change is not a single
    // insertion.
    const FunctionType* type = cb.find_type(changed);
    next.plans_.reserve(cb.types().size());
    const auto carry_forward = [&](const std::shared_ptr<const TypePlan>& plan) {
        if (metadata_current(*plan, bounds)) {
            next.plans_.push_back(plan);  // COW: successor aliases the plan
            return;
        }
        auto refreshed = std::make_shared<TypePlan>(*plan);
        refresh_column_metadata(*refreshed, bounds);
        next.plans_.push_back(std::move(refreshed));
    };
    bool handled = false;
    for (const std::shared_ptr<const TypePlan>& plan : previous.plans_) {
        if (!handled && changed < plan->id && type != nullptr) {
            next.plans_.push_back(
                std::make_shared<const TypePlan>(compile_type_plan(*type, bounds)));
            handled = true;  // type added before this plan's id
        }
        if (plan->id == changed) {
            handled = true;
            if (type == nullptr) {
                continue;  // type removed from the tree: drop its plan
            }
            TypePlan spliced;
            if (patch_single_insert(*plan, *type, spliced)) {
                refresh_column_metadata(spliced, bounds);
                next.plans_.push_back(std::make_shared<const TypePlan>(std::move(spliced)));
            } else {
                next.plans_.push_back(
                    std::make_shared<const TypePlan>(compile_type_plan(*type, bounds)));
            }
            continue;
        }
        carry_forward(plan);
    }
    if (!handled && type != nullptr) {
        next.plans_.push_back(
            std::make_shared<const TypePlan>(compile_type_plan(*type, bounds)));  // appended
    }

    QFA_ASSERT(next.plans_.size() == cb.types().size(),
               "patched() requires that only `changed` mutated since `previous`");
    return next;
}

const TypePlan* CompiledCaseBase::find(TypeId id) const noexcept {
    const auto it = std::lower_bound(
        plans_.begin(), plans_.end(), id,
        [](const std::shared_ptr<const TypePlan>& plan, TypeId target) {
            return plan->id < target;
        });
    if (it != plans_.end() && (*it)->id == id) {
        return it->get();
    }
    return nullptr;
}

CompiledStats CompiledCaseBase::stats() const noexcept {
    CompiledStats stats;
    stats.type_count = plans_.size();
    for (const std::shared_ptr<const TypePlan>& plan : plans_) {
        stats.impl_count += plan->impl_count;
        const std::size_t columns = plan->attr_ids.size();
        stats.column_count += columns;
        // value_slots / sentinel_slots count the logical (unpadded) grid so
        // the "slots minus sentinels equals tree attributes" invariant is
        // layout-independent; the alignment tail is reported separately.
        stats.value_slots += columns * plan->impl_count;
        stats.padded_slots += columns * (plan->row_stride - plan->impl_count);
        stats.exact_tier_bytes +=
            columns * plan->row_stride * (sizeof(AttrValue) + sizeof(std::uint16_t));
        stats.q8_tier_bytes += plan->q8.size() * sizeof(std::uint8_t) +
                               (plan->q8_scale.size() + plan->q8_err.size()) * sizeof(float);
        for (std::size_t c = 0; c < columns; ++c) {
            for (std::size_t r = 0; r < plan->impl_count; ++r) {
                if (plan->present_mask[plan->slot(c, r)] == 0) {
                    ++stats.sentinel_slots;
                }
            }
        }
    }
    return stats;
}

}  // namespace qfa::cbr
