// Dynamic case-base maintenance — the retain/revise steps of the CBR cycle.
//
// Fig. 2 shows the full retrieve→reuse→revise→retain cycle; the paper's
// shipped system restricts itself to retrieval over a static tree but names
// "dynamic update mechanisms of Case-Base-data structures [...] enabling
// for a self-learning system" as future work (§5).  This module implements
// that extension:
//
//  * retain: insert new implementation variants at run time, but only when
//    they add knowledge (novelty check against the existing variants);
//  * revise: track per-variant allocation outcomes and retire variants whose
//    observed failure rate disqualifies them;
//  * bounds maintenance: design-global attribute bounds only ever widen, so
//    previously packed supplemental tables remain conservative.
//
// Thread safety / serving.  DynamicCaseBase is *not* internally
// synchronized: it is the writer-side master copy.  Under the serve layer
// (src/serve) every mutator runs under the engine's writer mutex, and
// readers never touch this object at all — each successful mutation bumps
// epoch() and is turned into an immutable serve::Generation (snapshot +
// incrementally patched compiled plans, see CompiledCaseBase::patched)
// that is what retrieval threads actually score.  The epoch counter is
// therefore also the published generation tag: one mutation, one epoch,
// one atomic plan swap.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/bounds.hpp"
#include "core/case_base.hpp"
#include "core/ids.hpp"

namespace qfa::cbr {

/// Outcome of a retain attempt.
enum class RetainVerdict {
    retained,        ///< variant added to the tree
    duplicate,       ///< rejected: an existing variant is too similar
    unknown_type,    ///< rejected: the function type does not exist
    duplicate_id,    ///< rejected: the ImplId is already taken in this type
};

/// Per-variant allocation outcome statistics (revise bookkeeping).
struct OutcomeStats {
    std::uint32_t successes = 0;
    std::uint32_t failures = 0;

    [[nodiscard]] std::uint32_t trials() const noexcept { return successes + failures; }
    [[nodiscard]] double failure_rate() const noexcept {
        return trials() == 0 ? 0.0 : static_cast<double>(failures) / trials();
    }
};

/// Counters describing the life of a dynamic case base.
struct MaintenanceStats {
    std::uint64_t retained = 0;
    std::uint64_t rejected_duplicates = 0;
    std::uint64_t revised_out = 0;
    std::uint64_t types_added = 0;
};

/// A case base that can learn: mutable implementation tree plus
/// automatically maintained design-global bounds.
class DynamicCaseBase {
public:
    /// Starts from an existing (possibly empty) tree; bounds are derived
    /// from it.
    explicit DynamicCaseBase(CaseBase initial = CaseBase{});

    /// Immutable snapshot for retrieval / packing.  O(tree) copy; callers
    /// that retrieve often should snapshot once per mutation epoch (the
    /// epoch counter below identifies stale snapshots).
    [[nodiscard]] CaseBase snapshot() const;

    /// Monotone counter bumped by every successful mutation.
    [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

    /// Current bounds table (kept in sync with the tree; only widens).
    [[nodiscard]] const BoundsTable& bounds() const noexcept { return bounds_; }

    /// Adds a new function type; false if the id already exists.
    bool add_type(TypeId id, std::string name);

    /// Retains `impl` under `type` if no existing variant of that type is
    /// more similar than `novelty_threshold` (attribute-wise weighted-sum
    /// similarity with equal weights).  threshold 1.0 admits everything
    /// except exact duplicates; 0.0 admits nothing once a variant exists.
    RetainVerdict retain(TypeId type, Implementation impl, double novelty_threshold = 0.98);

    /// Removes one variant; false when absent.
    bool remove_implementation(TypeId type, ImplId impl);

    /// Records an allocation outcome for the revise step.
    void record_outcome(TypeId type, ImplId impl, bool success);

    /// Outcome statistics of one variant (zeros when never recorded).
    [[nodiscard]] OutcomeStats outcome(TypeId type, ImplId impl) const;

    /// Revise: removes every variant with at least `min_trials` recorded
    /// outcomes and a failure rate strictly above `max_failure_rate`.
    /// Returns the removed (type, impl) pairs.
    std::vector<std::pair<TypeId, ImplId>> revise(double max_failure_rate,
                                                  std::uint32_t min_trials = 5);

    [[nodiscard]] const MaintenanceStats& stats() const noexcept { return stats_; }

    /// Similarity of a candidate implementation to the nearest existing
    /// variant of the type (the novelty measure); 0 when the type is empty.
    [[nodiscard]] double nearest_neighbour_similarity(TypeId type,
                                                      const Implementation& impl) const;

private:
    [[nodiscard]] FunctionType* find_type(TypeId id);
    [[nodiscard]] const FunctionType* find_type(TypeId id) const;

    static std::uint32_t outcome_key(TypeId type, ImplId impl) noexcept {
        return (static_cast<std::uint32_t>(type.value()) << 16) | impl.value();
    }

    std::vector<FunctionType> types_;  ///< ascending by TypeId
    BoundsTable bounds_;
    std::unordered_map<std::uint32_t, OutcomeStats> outcomes_;
    MaintenanceStats stats_;
    std::uint64_t epoch_ = 0;
};

}  // namespace qfa::cbr
