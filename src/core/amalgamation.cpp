#include "core/amalgamation.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/contracts.hpp"

namespace qfa::cbr {

namespace {

void check_inputs(std::span<const double> locals, std::span<const double> weights) {
    QFA_EXPECTS(locals.size() == weights.size(),
                "amalgamation needs one weight per local similarity");
    QFA_EXPECTS(!locals.empty(), "amalgamation needs at least one local similarity");
}

}  // namespace

double WeightedSum::combine(std::span<const double> locals,
                            std::span<const double> weights) const {
    check_inputs(locals, weights);
    double sum = 0.0;
    for (std::size_t i = 0; i < locals.size(); ++i) {
        sum += weights[i] * locals[i];
    }
    return std::clamp(sum, 0.0, 1.0);
}

double MinAmalgamation::combine(std::span<const double> locals,
                                std::span<const double> weights) const {
    check_inputs(locals, weights);
    return *std::min_element(locals.begin(), locals.end());
}

double MaxAmalgamation::combine(std::span<const double> locals,
                                std::span<const double> weights) const {
    check_inputs(locals, weights);
    return *std::max_element(locals.begin(), locals.end());
}

double OrderedWeightedAverage::combine(std::span<const double> locals,
                                       std::span<const double> weights) const {
    check_inputs(locals, weights);
    std::vector<double> sorted(locals.begin(), locals.end());
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    double sum = 0.0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        sum += weights[i] * sorted[i];
    }
    return std::clamp(sum, 0.0, 1.0);
}

double WeightedEuclidean::combine(std::span<const double> locals,
                                  std::span<const double> weights) const {
    check_inputs(locals, weights);
    double sum = 0.0;
    for (std::size_t i = 0; i < locals.size(); ++i) {
        const double miss = 1.0 - locals[i];
        sum += weights[i] * miss * miss;
    }
    return std::clamp(1.0 - std::sqrt(sum), 0.0, 1.0);
}

std::unique_ptr<Amalgamation> make_amalgamation(AmalgamationKind kind) {
    switch (kind) {
        case AmalgamationKind::weighted_sum:
            return std::make_unique<WeightedSum>();
        case AmalgamationKind::minimum:
            return std::make_unique<MinAmalgamation>();
        case AmalgamationKind::maximum:
            return std::make_unique<MaxAmalgamation>();
        case AmalgamationKind::owa:
            return std::make_unique<OrderedWeightedAverage>();
        case AmalgamationKind::weighted_euclidean:
            return std::make_unique<WeightedEuclidean>();
    }
    QFA_ASSERT(false, "unknown amalgamation kind");
}

}  // namespace qfa::cbr
