#include "core/retrieval.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>

#include "core/kernels.hpp"
#include "fixed/reciprocal.hpp"
#include "util/contracts.hpp"

namespace qfa::cbr {

static_assert(TypePlan::kQuantBlock == kern::kQ8Block,
              "the plan layout and the Q8 kernels must agree on the block size");

namespace {

const WeightedSum kDefaultAmalgamation{};

/// Single place for option validation (shared by the tree path, the
/// compiled path and the batch API).
void validate_options(const RetrievalOptions& options) {
    QFA_EXPECTS(options.n_best >= 1, "n_best must be at least 1");
}

/// Shared per-constraint iteration over one tree implementation: invokes
/// `fn(index, constraint, optional_case_value)` for every request
/// constraint — the one binary-search walk both the double-precision and
/// the Q15 reference scoring loops route through.
template <typename Fn>
void for_each_constraint_local(const Implementation& impl,
                               std::span<const RequestAttribute> constraints, Fn&& fn) {
    for (std::size_t i = 0; i < constraints.size(); ++i) {
        fn(i, constraints[i], impl.attribute(constraints[i].id));
    }
}

/// Normalizes request weights into scratch.norm_weights — the exact
/// arithmetic of Request::normalized (one left-to-right sum, then one
/// divide per weight) without the Request copy.  All scoring paths route
/// through this one helper: the bit-identity contracts between them
/// depend on every path normalizing in the same operation order.
void normalize_weights_into(std::span<const RequestAttribute> constraints,
                            RetrievalScratch& scratch) {
    double sum = 0.0;
    for (const RequestAttribute& c : constraints) {
        sum += c.weight;
    }
    QFA_ASSERT(sum > 0.0, "validated request must have positive weight sum");
    scratch.norm_weights.resize(constraints.size());
    for (std::size_t i = 0; i < constraints.size(); ++i) {
        scratch.norm_weights[i] = constraints[i].weight / sum;
    }
}

/// Same, plus the largest-remainder Q15 quantization into
/// scratch.q15_weights — the Q15 paths' shared front end.
void normalize_and_quantize_weights_into(std::span<const RequestAttribute> constraints,
                                         RetrievalScratch& scratch) {
    normalize_weights_into(constraints, scratch);
    quantize_weights(scratch.norm_weights, scratch.q15_weights, scratch.quant);
}

/// Ranking predicate of the result list: descending similarity, ties to
/// the smaller ImplId (deterministic, matches the reference stable_sort).
inline bool ranks_before(double sim_a, ImplId impl_a, double sim_b, ImplId impl_b) {
    if (sim_a != sim_b) {
        return sim_a > sim_b;
    }
    return impl_a < impl_b;
}

// ---- Two-phase (Q8) retrieval ---------------------------------------------
//
// Phase 1 scores every row approximately over the plan's Q8 quantized tier
// (~1.25 bytes/row/constraint instead of the exact tier's 4) and keeps the
// top K = max(phase1_k, 4 × n_best) rows.  Phase 2 rescores the survivors
// with the exact f64 arithmetic.  Exactness is *proved per request*, not
// assumed: with E(r) = Σ_i w_i · L · err(c_i, block(r)) / divisor(c_i)
// (L = 1 for the manhattan measure, 2 for squared — their Lipschitz
// constants in the case value over [0, divisor]) plus an FP slack, every
// row's exact score satisfies S(r) ≤ Ŝ(r) + E(r).  The cut is accepted
// only when max over rejected rows of Ŝ(x) + E(x) is *strictly* below the
// n_best-th best exact survivor score — then no rejected row can enter the
// top n_best under any tie-breaking — and otherwise K doubles (reusing the
// phase-1 scores; the Q8 tier is never rescanned) until the check passes
// or everything is rescored, which is trivially exact.
//
// Widening is organized around a candidate *pool* so it never repeats the
// O(rows) selection scan: one bounded-heap pass picks the top `cap`
// (≥ 8 K) rows and tracks the most optimistic row left outside; the pool
// is then sorted once, a suffix-max of Ŝ + E is precomputed, and each
// widening round just extends the rescored prefix — the rejected-side
// bound for a prefix of length k is max(outside, suffix[k]), O(1) per
// round.  Only when even the whole pool cannot prove the cut does the scan
// rebuild with cap × 8 (geometric, so the degenerate all-ties case stays
// O(rows · log) until the pool covers every row, where the check accepts
// unconditionally — everything rescored is trivially exact).

/// Absolute slack added to every per-block error bound: covers the FP
/// rounding differences between the kernel's approximate accumulation and
/// the exact rescore, including the Q8 kernels' reciprocal multiply
/// (d × (1/divisor) instead of d / divisor — see kernels.inl; ≲ 2 ulps of
/// a ratio ≤ 1 per constraint, so ≲ n · 2⁻⁵¹ per score for n constraints).
/// 1e-11 dwarfs that for any plausible n while sitting orders of magnitude
/// below real quantization errors, so it never costs measurable
/// selectivity.
constexpr double kTwoPhaseSlack = 1e-11;

/// Exact f64 score of one plan row — operation-for-operation the
/// arithmetic the fused kernel path performs for this row's lane
/// (kernels.inl): d = |req − value|, ratio = d / divisor, the clamp and
/// presence masks as branches, × normalized weight, accumulated in
/// constraint order, then WeightedSum's final clamp.  The kernels' masked
/// lanes contribute +0.0 exactly like the `s = 0.0` terms here, and the
/// accumulator can never be −0.0 (all terms ≥ +0.0), so the sums are
/// bitwise equal to a full kernel scan's — the rock the two-phase
/// bit-identity contract stands on (pinned by tests/core/quant_tier_test).
double exact_row_score(const TypePlan& plan, std::size_t row,
                       std::span<const RequestAttribute> constraints,
                       std::span<const std::size_t> columns,
                       std::span<const double> norm_weights, LocalMetric metric) {
    double acc = 0.0;
    for (std::size_t i = 0; i < constraints.size(); ++i) {
        const std::size_t c = columns[i];
        if (c == TypePlan::npos) {
            continue;  // the kernel scan never touches this constraint
        }
        const std::size_t slot = plan.slot(c, row);
        double s = 0.0;
        if (plan.present_mask[slot] != 0) {
            const double d = std::abs(static_cast<double>(constraints[i].value) -
                                      static_cast<double>(plan.values[slot]));
            const double ratio = d / plan.divisor[c];
            if (ratio < 1.0) {
                s = metric == LocalMetric::manhattan ? 1.0 - ratio : 1.0 - ratio * ratio;
            }
        }
        acc += norm_weights[i] * s;
    }
    return std::clamp(acc, 0.0, 1.0);
}

/// The two-phase scorer of retrieve_compiled_into's fused path.  Returns
/// true with scratch.survivors holding the candidate rows (ascending) and
/// sims[] exactly scored at those rows — a proven superset of the rows any
/// exact full scan would return — or false when the plan has no Q8 tier,
/// is below the engagement threshold, or K already covers every row (the
/// exact scan is then at least as cheap).
bool two_phase_score(const TypePlan& plan, std::span<const RequestAttribute> constraints,
                     const RetrievalOptions& options, RetrievalScratch& scratch,
                     std::vector<double>& sims) {
    const std::size_t rows = plan.impl_count;
    const std::size_t k0 = std::max(scratch.phase1_k, 4 * options.n_best);
    if (!plan.has_q8() || rows < scratch.two_phase_min_rows || k0 >= rows) {
        return false;
    }
    const std::size_t n = constraints.size();
    const std::size_t stride = plan.row_stride;
    const std::size_t blocks = plan.q8_blocks();

    // Phase 1: approximate every row over the quantized tier, and fold the
    // plan's per-(column, block) quantization error bounds into one score
    // bound per block of rows.
    //
    // The scan is *tiled*: all constraints run over one kTileBlocks-block
    // slice of rows before the scan advances, so the f64 accumulator slice
    // (the dominant memory traffic of a constraint-major scan — 16 bytes
    // of acc read+write per row per constraint, dwarfing the ~1.25 value
    // bytes the Q8 tier streams) stays L1-resident instead of making a
    // round trip per constraint.  Per row the terms still accumulate in
    // constraint order, so the scores are bitwise what the un-tiled loop
    // produced.
    std::vector<double>& approx = scratch.approx;
    approx.assign(stride, 0.0);
    std::vector<double>& block_err = scratch.block_err;
    block_err.assign(blocks, kTwoPhaseSlack);
    plan.map_columns(constraints, scratch.columns);
    const kern::KernelTable& kernels = kern::active_kernels();
    const auto kernel = options.metric == LocalMetric::manhattan ? kernels.q8_manhattan
                                                                 : kernels.q8_squared;
    constexpr std::size_t kTileBlocks = 8;  // 256 rows → a 2 KB acc slice
    for (std::size_t b0 = 0; b0 < blocks; b0 += kTileBlocks) {
        const std::size_t r0 = b0 * TypePlan::kQuantBlock;
        const std::size_t len = std::min(stride - r0, kTileBlocks * TypePlan::kQuantBlock);
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t c = scratch.columns[i];
            if (c == TypePlan::npos) {
                continue;  // s_i = 0 everywhere, exactly as in the exact scan
            }
            kernel(approx.data() + r0, plan.q8.data() + c * stride + r0,
                   plan.q8_scale.data() + c * blocks + b0, len, constraints[i].value,
                   plan.divisor[c], scratch.norm_weights[i]);
        }
    }
    const double lipschitz = options.metric == LocalMetric::manhattan ? 1.0 : 2.0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t c = scratch.columns[i];
        if (c == TypePlan::npos) {
            continue;
        }
        const double factor = scratch.norm_weights[i] * lipschitz / plan.divisor[c];
        for (std::size_t b = 0; b < blocks; ++b) {
            block_err[b] += factor * static_cast<double>(plan.q8_err[c * blocks + b]);
        }
    }
    // No clamp pass over approx: the safety check only uses Ŝ + E as an
    // *upper* bound on the exact score, and clamping can only lower the
    // exact side (S = clamp(sum) ≤ sum ≤ Ŝ + E holds unclamped), so
    // ranking rows by the raw accumulator is both correct and one O(rows)
    // pass cheaper.

    scratch.two_phase = TwoPhaseStats{true, 0, 0, 0};
    std::vector<std::uint32_t>& survivors = scratch.survivors;
    sims.resize(stride);  // only survivor slots are written (and later read)

    const auto better = [&](std::uint32_t a, std::uint32_t b) {
        if (approx[a] != approx[b]) {
            return approx[a] > approx[b];
        }
        return a < b;
    };
    const auto row_bound = [&](std::uint32_t r) {
        return approx[r] + block_err[r / TypePlan::kQuantBlock];
    };
    const auto rescore = [&](std::uint32_t r) {
        sims[r] = exact_row_score(plan, r, constraints, scratch.columns,
                                  scratch.norm_weights, options.metric);
        ++scratch.two_phase.rescored;
    };

    std::size_t k = k0;
    // The pool comfortably over-covers K so typical widening stays inside
    // it; 8× was sized against the bench workloads' observed final K.  When
    // the pool swallows the whole plan no special case is needed: nothing
    // is left outside, so outside_bound stays −1 and the safety check
    // trivially accepts once k reaches rows (exact scores are ≥ 0).
    std::size_t cap = std::min(rows, std::max<std::size_t>(8 * k0, 64));
    while (true) {
        // One bounded-heap pass selects the top `cap` rows by (Ŝ desc, row
        // asc) — any deterministic order works, the safety check covers
        // every rejected row — tracking the most optimistic row left
        // outside the pool: max over outside x of Ŝ(x) + E(x).
        double outside_bound = -1.0;  // bounds are ≥ 0
        survivors.clear();
        for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(cap); ++r) {
            survivors.push_back(r);
        }
        std::make_heap(survivors.begin(), survivors.end(), better);
        // Hot loop: one register compare per row in the common (reject)
        // case.  Every candidate row r arrives after all pool rows, so on
        // an approx tie `better` resolves to the incumbent (smaller row)
        // and the strict > against the cached heap-front value is exactly
        // the `better(r, front)` test without the indirect load.
        double front_val = approx[survivors.front()];
        for (std::uint32_t r = static_cast<std::uint32_t>(cap);
             r < static_cast<std::uint32_t>(rows); ++r) {
            if (approx[r] > front_val) {
                std::pop_heap(survivors.begin(), survivors.end(), better);
                outside_bound = std::max(outside_bound, row_bound(survivors.back()));
                survivors.back() = r;
                std::push_heap(survivors.begin(), survivors.end(), better);
                front_val = approx[survivors.front()];
            } else {
                outside_bound = std::max(outside_bound, row_bound(r));
            }
        }
        std::sort(survivors.begin(), survivors.end(), better);

        // suffix_bound[j] = most optimistic row in pool[j..cap) or outside:
        // the rejected-side bound when the rescored prefix has length j.
        std::vector<double>& suffix_bound = scratch.suffix_bound;
        suffix_bound.assign(cap + 1, outside_bound);
        for (std::size_t j = cap; j-- > 0;) {
            suffix_bound[j] = std::max(suffix_bound[j + 1], row_bound(survivors[j]));
        }

        // Phase 2: exactly rescore the prefix; widen by doubling it.  Each
        // round costs only the newly added rows plus an O(k) safety check.
        std::size_t scored = 0;
        while (true) {
            for (; scored < k; ++scored) {
                rescore(survivors[scored]);
            }
            scratch.two_phase.final_k = k;

            // Safety check: the n_best-th best exact survivor must
            // *strictly* beat every rejected row's upper bound; otherwise
            // a rejected row could still belong in the top n_best and K
            // must widen.  k >= k0 >= 4 × n_best, so nth_element is valid.
            std::vector<double>& exact_vals = scratch.locals;
            exact_vals.clear();
            for (std::size_t j = 0; j < k; ++j) {
                exact_vals.push_back(sims[survivors[j]]);
            }
            std::nth_element(
                exact_vals.begin(),
                exact_vals.begin() + static_cast<std::ptrdiff_t>(options.n_best - 1),
                exact_vals.end(), std::greater<double>());
            if (suffix_bound[k] < exact_vals[options.n_best - 1]) {
                survivors.resize(k);
                // The final heap selection visits survivors in ascending
                // row order so its tie handling is position-independent of
                // how the pool happened to order them.
                std::sort(survivors.begin(), survivors.end());
                return true;
            }
            ++scratch.two_phase.widen_rounds;
            if (k == cap) {
                break;  // even the whole pool can't prove the cut: regrow
            }
            k = std::min(cap, k * 2);
        }
        k = cap;  // keep the prefix monotone across the pool rebuild
        cap = std::min(rows, cap * 8);
    }
}

/// Fills one reference-identical details row list for a compiled plan row.
void collect_plan_details(const TypePlan& plan, std::size_t row,
                          std::span<const RequestAttribute> constraints,
                          std::span<const std::size_t> columns,
                          std::span<const double> norm_weights, LocalMetric metric,
                          const BoundsTable& bounds, Match& match) {
    match.details.reserve(constraints.size());
    for (std::size_t i = 0; i < constraints.size(); ++i) {
        const RequestAttribute& constraint = constraints[i];
        const std::size_t c = columns[i];
        std::optional<AttrValue> case_value;
        double s = 0.0;
        std::uint32_t dmax;
        if (c != TypePlan::npos) {
            dmax = plan.dmax[c];
            const std::size_t slot = plan.slot(c, row);
            if (plan.present_mask[slot] != 0) {
                case_value = plan.values[slot];
                s = local_similarity(metric, constraint.value, *case_value, dmax);
            }
        } else {
            // The reference records the design-global dmax even when the
            // attribute occurs in no implementation of the type.
            dmax = bounds.dmax(constraint.id);
        }
        match.details.push_back(LocalDetail{
            constraint.id, constraint.value, case_value,
            case_value ? manhattan_distance(constraint.value, *case_value) : 0, dmax,
            norm_weights[i], s});
    }
}

}  // namespace

const Match& RetrievalResult::best() const {
    QFA_EXPECTS(!matches.empty(), "best() on an empty retrieval result");
    return matches.front();
}

bool identical_results(const RetrievalResult& a, const RetrievalResult& b) noexcept {
    const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
    if (a.status != b.status || a.impls_considered != b.impls_considered ||
        a.attrs_compared != b.attrs_compared || a.matches.size() != b.matches.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.matches.size(); ++i) {
        const Match& x = a.matches[i];
        const Match& y = b.matches[i];
        if (x.type != y.type || x.impl != y.impl || x.target != y.target ||
            bits(x.similarity) != bits(y.similarity) ||
            x.details.size() != y.details.size()) {
            return false;
        }
        for (std::size_t d = 0; d < x.details.size(); ++d) {
            const LocalDetail& p = x.details[d];
            const LocalDetail& q = y.details[d];
            if (p.id != q.id || p.request_value != q.request_value ||
                p.case_value != q.case_value || p.distance != q.distance ||
                p.dmax != q.dmax || bits(p.weight) != bits(q.weight) ||
                bits(p.similarity) != bits(q.similarity)) {
                return false;
            }
        }
    }
    return true;
}

Retriever::Retriever(const CaseBase& cb, const BoundsTable& bounds,
                     const Amalgamation* amalgamation)
    : cb_(&cb), bounds_(&bounds), amalgamation_(amalgamation) {}

Retriever::Retriever(const CaseBase& cb, const BoundsTable& bounds,
                     const CompiledCaseBase& compiled, const Amalgamation* amalgamation)
    : cb_(&cb), bounds_(&bounds), amalgamation_(amalgamation) {
    bind_compiled(compiled);
}

void Retriever::bind_compiled(const CompiledCaseBase& compiled) {
    QFA_EXPECTS(compiled.source() == cb_,
                "compiled view must be built from the retriever's case base");
    QFA_EXPECTS(compiled.source_bounds() == bounds_,
                "compiled view must be built from the retriever's bounds table");
    compiled_ = &compiled;
}

RetrievalResult Retriever::retrieve(const Request& request,
                                    const RetrievalOptions& options) const {
    validate_options(options);

    RetrievalResult result;
    const FunctionType* type = cb_->find_type(request.type());
    if (type == nullptr) {
        result.status = RetrievalStatus::type_not_found;
        return result;
    }

    const Request normalized = request.normalized();
    const Amalgamation& amalg =
        amalgamation_ != nullptr ? *amalgamation_ : kDefaultAmalgamation;

    std::vector<Match> scored;
    scored.reserve(type->impls.size());
    std::vector<double> locals;
    std::vector<double> weights;
    for (const Implementation& impl : type->impls) {
        ++result.impls_considered;
        locals.clear();
        weights.clear();
        Match match{type->id, impl.id, impl.target, 0.0, {}};
        for_each_constraint_local(
            impl, normalized.constraints(),
            [&](std::size_t, const RequestAttribute& constraint,
                const std::optional<AttrValue>& case_value) {
                ++result.attrs_compared;
                const std::uint32_t dmax = bounds_->dmax(constraint.id);
                // Missing attribute: unsatisfiable requirement, s_i = 0 (§3).
                const double s = case_value
                                     ? local_similarity(options.metric, constraint.value,
                                                        *case_value, dmax)
                                     : 0.0;
                locals.push_back(s);
                weights.push_back(constraint.weight);
                if (options.collect_details) {
                    match.details.push_back(LocalDetail{
                        constraint.id, constraint.value, case_value,
                        case_value ? manhattan_distance(constraint.value, *case_value) : 0,
                        dmax, constraint.weight, s});
                }
            });
        match.similarity = amalg.combine(locals, weights);
        scored.push_back(std::move(match));
    }

    // Rank descending by similarity; ties resolve to the smaller ImplId so
    // results are deterministic.
    std::stable_sort(scored.begin(), scored.end(), [](const Match& a, const Match& b) {
        return ranks_before(a.similarity, a.impl, b.similarity, b.impl);
    });

    for (Match& match : scored) {
        if (match.similarity < options.threshold) {
            continue;  // §3: reject all results below a given threshold
        }
        result.matches.push_back(std::move(match));
        if (result.matches.size() >= options.n_best) {
            break;
        }
    }

    result.status = result.matches.empty() ? RetrievalStatus::all_below_threshold
                                           : RetrievalStatus::ok;
    if (scored.empty()) {
        // A type with no implementations behaves like an unknown type for
        // callers: nothing can be allocated.
        result.status = RetrievalStatus::all_below_threshold;
    }
    return result;
}

RetrievalResult Retriever::retrieve_compiled(const Request& request,
                                             const RetrievalOptions& options,
                                             RetrievalScratch* scratch) const {
    RetrievalScratch local;
    return retrieve_compiled_into(request, options, scratch != nullptr ? *scratch : local);
}

std::vector<RetrievalResult> Retriever::retrieve_batch(std::span<const Request> requests,
                                                       const RetrievalOptions& options,
                                                       RetrievalScratch& scratch) const {
    std::vector<RetrievalResult> results;
    results.reserve(requests.size());
    for (const Request& request : requests) {
        results.push_back(retrieve_compiled_into(request, options, scratch));
    }
    return results;
}

RetrievalResult Retriever::retrieve_compiled_into(const Request& request,
                                                  const RetrievalOptions& options,
                                                  RetrievalScratch& scratch) const {
    validate_options(options);
    QFA_EXPECTS(compiled_ != nullptr,
                "retrieve_compiled needs a bound CompiledCaseBase (bind_compiled)");

    RetrievalResult result;
    scratch.two_phase = TwoPhaseStats{};  // telemetry reflects this call only
    const TypePlan* plan = compiled_->find(request.type());
    if (plan == nullptr) {
        result.status = RetrievalStatus::type_not_found;
        return result;
    }
    const std::size_t rows = plan->impl_count;
    result.impls_considered = rows;
    if (rows == 0) {
        result.status = RetrievalStatus::all_below_threshold;
        return result;
    }

    const std::span<const RequestAttribute> constraints = request.constraints();
    const std::size_t n = constraints.size();
    result.attrs_compared = rows * n;
    normalize_weights_into(constraints, scratch);

    std::vector<double>& sims = scratch.acc;
    bool two_phase = false;

    if (amalgamation_ == nullptr) {
        // Fused weighted-sum fast path.  Large plans go two-phase: an
        // approximate top-K scan of the Q8 quantized tier plus an exact
        // rescore of the survivors, proven per request to contain every
        // row the exact scan would return (see two_phase_score).  Anything
        // else — small plans, K >= rows — streams each constraint's full
        // exact column through the runtime-selected SIMD kernel
        // (core/kernels.hpp).  Per accumulator the terms arrive in
        // constraint order with the exact reference operations
        // (d / (1 + dmax), clamp-at-zero as a lane mask, presence as a lane
        // mask, × weight), and lanes are whole rows, so the final sums are
        // bit-identical to WeightedSum::combine at any vector width —
        // and the two-phase survivors' rescore performs the same
        // operations row-wise, so the paths agree bitwise everywhere
        // either of them is read.
        two_phase = two_phase_score(*plan, constraints, options, scratch, sims);
        if (!two_phase) {
            sims.assign(plan->row_stride, 0.0);  // padded lanes stay exactly 0.0
            const kern::KernelTable& kernels = kern::active_kernels();
            for_each_constraint_column(
                *plan, constraints, scratch.columns,
                [&](std::size_t i, const RequestAttribute& constraint, std::size_t c) {
                    if (c == TypePlan::npos) {
                        return;  // s_i = 0 everywhere: contributes exactly 0.0
                    }
                    const std::size_t stride = plan->row_stride;
                    const AttrValue* vals = plan->values.data() + c * stride;
                    const std::uint16_t* mask = plan->present_mask.data() + c * stride;
                    const auto kernel = options.metric == LocalMetric::manhattan
                                            ? kernels.manhattan
                                            : kernels.squared;
                    kernel(sims.data(), vals, mask, stride, constraint.value,
                           plan->divisor[c], scratch.norm_weights[i]);
                });
            for (std::size_t r = 0; r < rows; ++r) {
                sims[r] = std::clamp(sims[r], 0.0, 1.0);  // WeightedSum's final clamp
            }
        }
    } else {
        // General path (injected amalgamation): still columnar — the column
        // map replaces the per-(impl × constraint) binary search — but each
        // row materializes its locals for Amalgamation::combine.
        sims.assign(plan->row_stride, 0.0);
        plan->map_columns(constraints, scratch.columns);
        scratch.locals.resize(n);
        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t i = 0; i < n; ++i) {
                const std::size_t c = scratch.columns[i];
                double s = 0.0;
                if (c != TypePlan::npos) {
                    const std::size_t slot = plan->slot(c, r);
                    if (plan->present_mask[slot] != 0) {
                        s = local_similarity(options.metric, constraints[i].value,
                                             plan->values[slot], plan->dmax[c]);
                    }
                }
                scratch.locals[i] = s;
            }
            sims[r] = amalgamation_->combine(scratch.locals, scratch.norm_weights);
        }
    }

    // Bounded top-k selection: a partial heap over the candidate rows keyed
    // on (similarity desc, ImplId asc).  With `ranks_before` as the heap's
    // "less", the front is the worst kept candidate; the final sort yields
    // exactly the first n_best entries of the reference full sort.  Under
    // two-phase scoring the candidates are the exactly-rescored survivors —
    // a proven superset of the reference's top n_best, visited in the same
    // ascending row order, so the selected set and its order are identical.
    std::vector<std::uint32_t>& heap = scratch.topk;
    heap.clear();
    const auto heap_less = [&](std::uint32_t a, std::uint32_t b) {
        return ranks_before(sims[a], plan->impl_ids[a], sims[b], plan->impl_ids[b]);
    };
    const auto consider = [&](std::uint32_t r) {
        if (sims[r] < options.threshold) {
            return;  // §3 threshold rejection, as in the reference loop
        }
        if (heap.size() < options.n_best) {
            heap.push_back(r);
            std::push_heap(heap.begin(), heap.end(), heap_less);
        } else if (ranks_before(sims[r], plan->impl_ids[r], sims[heap.front()],
                                plan->impl_ids[heap.front()])) {
            std::pop_heap(heap.begin(), heap.end(), heap_less);
            heap.back() = r;
            std::push_heap(heap.begin(), heap.end(), heap_less);
        }
    };
    if (two_phase) {
        for (const std::uint32_t r : scratch.survivors) {
            consider(r);
        }
    } else {
        for (std::uint32_t r = 0; r < rows; ++r) {
            consider(r);
        }
    }
    std::sort(heap.begin(), heap.end(), heap_less);

    result.matches.reserve(heap.size());
    for (const std::uint32_t r : heap) {
        Match match{plan->id, plan->impl_ids[r], plan->targets[r], sims[r], {}};
        if (options.collect_details) {
            collect_plan_details(*plan, r, constraints, scratch.columns,
                                 scratch.norm_weights, options.metric, *bounds_, match);
        }
        result.matches.push_back(std::move(match));
    }

    result.status = result.matches.empty() ? RetrievalStatus::all_below_threshold
                                           : RetrievalStatus::ok;
    return result;
}

std::vector<MatchQ15> Retriever::score_q15(const Request& request) const {
    RetrievalScratch local;
    score_q15_into(request, local);
    return std::move(local.q15_out);
}

std::span<const MatchQ15> Retriever::score_q15_into(const Request& request,
                                                    RetrievalScratch& scratch) const {
    std::vector<MatchQ15>& out = scratch.q15_out;
    out.clear();
    const FunctionType* type = cb_->find_type(request.type());
    if (type == nullptr) {
        return out;
    }

    // Weight normalization + quantization entirely in scratch: no Request
    // copy, no per-call allocation.
    const std::span<const RequestAttribute> constraints = request.constraints();
    normalize_and_quantize_weights_into(constraints, scratch);
    const std::span<const fx::Q15> weights = scratch.q15_weights;

    out.reserve(type->impls.size());
    for (const Implementation& impl : type->impls) {
        fx::SimAccumulator acc;
        for_each_constraint_local(
            impl, constraints,
            [&](std::size_t i, const RequestAttribute& constraint,
                const std::optional<AttrValue>& case_value) {
                const fx::Q15 s =
                    case_value
                        ? cbr::local_similarity_q15(constraint.value, *case_value,
                                                    bounds_->reciprocal(constraint.id))
                        : fx::Q15::zero();
                acc.add_product(s, weights[i]);
            });
        out.push_back(MatchQ15{type->id, impl.id, acc.raw_q30()});
    }
    return out;
}

std::vector<MatchQ15> Retriever::score_q15_compiled(const Request& request,
                                                    RetrievalScratch* scratch) const {
    RetrievalScratch local;
    RetrievalScratch& s = scratch != nullptr ? *scratch : local;
    const std::span<const MatchQ15> scored = score_q15_compiled_into(request, s);
    if (scratch == nullptr) {
        return std::move(local.q15_out);
    }
    return {scored.begin(), scored.end()};
}

std::span<const MatchQ15> Retriever::score_q15_compiled_into(
    const Request& request, RetrievalScratch& s) const {
    QFA_EXPECTS(compiled_ != nullptr,
                "score_q15_compiled needs a bound CompiledCaseBase (bind_compiled)");

    std::vector<MatchQ15>& out = s.q15_out;
    out.clear();
    const TypePlan* plan = compiled_->find(request.type());
    if (plan == nullptr) {
        return out;
    }
    const std::size_t rows = plan->impl_count;

    const std::span<const RequestAttribute> constraints = request.constraints();
    normalize_and_quantize_weights_into(constraints, s);

    s.acc_q30.assign(plan->row_stride, 0);  // padded lanes accumulate exactly 0
    // Same column traversal as the double-precision fast path, through the
    // Q15 SIMD kernel: the AND-masked raw word zeroes sentinel (and
    // padding) slots exactly like the reference's
    // `case_value ? ... : Q15::zero()`, and the arithmetic is exact
    // integer, so lane width cannot change any accumulator.
    const kern::KernelTable& kernels = kern::active_kernels();
    for_each_constraint_column(
        *plan, constraints, s.columns,
        [&](std::size_t i, const RequestAttribute& constraint, std::size_t c) {
            if (c == TypePlan::npos) {
                return;  // s_i = 0 everywhere: adds 0 to every accumulator
            }
            const std::size_t stride = plan->row_stride;
            kernels.q15(s.acc_q30.data(), plan->values.data() + c * stride,
                        plan->present_mask.data() + c * stride, stride,
                        constraint.value, plan->reciprocal[c].raw(),
                        s.q15_weights[i].raw());
        });

    out.reserve(rows);
    for (std::size_t r = 0; r < rows; ++r) {
        out.push_back(MatchQ15{plan->id, plan->impl_ids[r], s.acc_q30[r]});
    }
    return out;
}

std::optional<MatchQ15> Retriever::retrieve_q15(const Request& request,
                                                RetrievalScratch* scratch) const {
    RetrievalScratch local;
    RetrievalScratch& s = scratch != nullptr ? *scratch : local;
    const std::span<const MatchQ15> scored = compiled_ != nullptr
                                                 ? score_q15_compiled_into(request, s)
                                                 : score_q15_into(request, s);
    if (scored.empty()) {
        return std::nullopt;
    }
    // Hardware keeps the first maximum: strict `>` comparison against the
    // running best (fig. 6: "S > S_Best ?").
    std::size_t best = 0;
    for (std::size_t i = 1; i < scored.size(); ++i) {
        if (scored[i].similarity_q30 > scored[best].similarity_q30) {
            best = i;
        }
    }
    return scored[best];
}

RetrievalResult assemble_result_q30(const CaseBase& cb, const Request& request,
                                    std::span<const MatchQ15> ranked,
                                    const RetrievalOptions& options) {
    validate_options(options);
    RetrievalResult result;
    const FunctionType* type = cb.find_type(request.type());
    if (type == nullptr) {
        result.status = RetrievalStatus::type_not_found;
        return result;
    }
    // The compiled path's effort accounting: every row of the type is
    // scored, every constraint is looked up per row.  Datapath models track
    // their own effort in cycles (CpuStats / RtlResult); the result-level
    // counters describe the workload shape, identically across backends.
    result.impls_considered = type->impls.size();
    result.attrs_compared = type->impls.size() * request.constraints().size();
    if (type->impls.empty()) {
        result.status = RetrievalStatus::all_below_threshold;
        return result;
    }
    for (const MatchQ15& candidate : ranked) {
        QFA_EXPECTS(candidate.type == request.type(),
                    "assemble_result_q30 candidates must match the requested type");
        const double similarity = candidate.similarity();
        if (similarity < options.threshold) {
            continue;  // §3: reject all results below a given threshold
        }
        const Implementation* impl = type->find_impl(candidate.impl);
        QFA_EXPECTS(impl != nullptr,
                    "assemble_result_q30 candidate names an unknown implementation");
        result.matches.push_back(Match{type->id, impl->id, impl->target, similarity, {}});
        if (result.matches.size() >= options.n_best) {
            break;
        }
    }
    result.status = result.matches.empty() ? RetrievalStatus::all_below_threshold
                                           : RetrievalStatus::ok;
    return result;
}

double modeled_similarity_error_bound(const Request& request, const BoundsTable& bounds) {
    const Request normalized = request.normalized();
    const std::vector<fx::Q15> quantized = quantize_weights(normalized);
    const std::span<const RequestAttribute> constraints = normalized.constraints();
    double bound = 0.0;
    for (std::size_t i = 0; i < constraints.size(); ++i) {
        const double w_hat = quantized[i].to_double();
        bound += w_hat * fx::local_similarity_error_bound(bounds.dmax(constraints[i].id));
        bound += std::abs(w_hat - constraints[i].weight);
    }
    return bound;
}

}  // namespace qfa::cbr
