#include "core/retrieval.hpp"

#include <algorithm>
#include <bit>

#include "core/kernels.hpp"
#include "util/contracts.hpp"

namespace qfa::cbr {

namespace {

const WeightedSum kDefaultAmalgamation{};

/// Single place for option validation (shared by the tree path, the
/// compiled path and the batch API).
void validate_options(const RetrievalOptions& options) {
    QFA_EXPECTS(options.n_best >= 1, "n_best must be at least 1");
}

/// Shared per-constraint iteration over one tree implementation: invokes
/// `fn(index, constraint, optional_case_value)` for every request
/// constraint — the one binary-search walk both the double-precision and
/// the Q15 reference scoring loops route through.
template <typename Fn>
void for_each_constraint_local(const Implementation& impl,
                               std::span<const RequestAttribute> constraints, Fn&& fn) {
    for (std::size_t i = 0; i < constraints.size(); ++i) {
        fn(i, constraints[i], impl.attribute(constraints[i].id));
    }
}

/// Normalizes request weights into scratch.norm_weights — the exact
/// arithmetic of Request::normalized (one left-to-right sum, then one
/// divide per weight) without the Request copy.  All scoring paths route
/// through this one helper: the bit-identity contracts between them
/// depend on every path normalizing in the same operation order.
void normalize_weights_into(std::span<const RequestAttribute> constraints,
                            RetrievalScratch& scratch) {
    double sum = 0.0;
    for (const RequestAttribute& c : constraints) {
        sum += c.weight;
    }
    QFA_ASSERT(sum > 0.0, "validated request must have positive weight sum");
    scratch.norm_weights.resize(constraints.size());
    for (std::size_t i = 0; i < constraints.size(); ++i) {
        scratch.norm_weights[i] = constraints[i].weight / sum;
    }
}

/// Same, plus the largest-remainder Q15 quantization into
/// scratch.q15_weights — the Q15 paths' shared front end.
void normalize_and_quantize_weights_into(std::span<const RequestAttribute> constraints,
                                         RetrievalScratch& scratch) {
    normalize_weights_into(constraints, scratch);
    quantize_weights(scratch.norm_weights, scratch.q15_weights, scratch.quant);
}

/// Ranking predicate of the result list: descending similarity, ties to
/// the smaller ImplId (deterministic, matches the reference stable_sort).
inline bool ranks_before(double sim_a, ImplId impl_a, double sim_b, ImplId impl_b) {
    if (sim_a != sim_b) {
        return sim_a > sim_b;
    }
    return impl_a < impl_b;
}

/// Fills one reference-identical details row list for a compiled plan row.
void collect_plan_details(const TypePlan& plan, std::size_t row,
                          std::span<const RequestAttribute> constraints,
                          std::span<const std::size_t> columns,
                          std::span<const double> norm_weights, LocalMetric metric,
                          const BoundsTable& bounds, Match& match) {
    match.details.reserve(constraints.size());
    for (std::size_t i = 0; i < constraints.size(); ++i) {
        const RequestAttribute& constraint = constraints[i];
        const std::size_t c = columns[i];
        std::optional<AttrValue> case_value;
        double s = 0.0;
        std::uint32_t dmax;
        if (c != TypePlan::npos) {
            dmax = plan.dmax[c];
            const std::size_t slot = plan.slot(c, row);
            if (plan.present_mask[slot] != 0) {
                case_value = plan.values[slot];
                s = local_similarity(metric, constraint.value, *case_value, dmax);
            }
        } else {
            // The reference records the design-global dmax even when the
            // attribute occurs in no implementation of the type.
            dmax = bounds.dmax(constraint.id);
        }
        match.details.push_back(LocalDetail{
            constraint.id, constraint.value, case_value,
            case_value ? manhattan_distance(constraint.value, *case_value) : 0, dmax,
            norm_weights[i], s});
    }
}

}  // namespace

const Match& RetrievalResult::best() const {
    QFA_EXPECTS(!matches.empty(), "best() on an empty retrieval result");
    return matches.front();
}

bool identical_results(const RetrievalResult& a, const RetrievalResult& b) noexcept {
    const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
    if (a.status != b.status || a.impls_considered != b.impls_considered ||
        a.attrs_compared != b.attrs_compared || a.matches.size() != b.matches.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.matches.size(); ++i) {
        const Match& x = a.matches[i];
        const Match& y = b.matches[i];
        if (x.type != y.type || x.impl != y.impl || x.target != y.target ||
            bits(x.similarity) != bits(y.similarity) ||
            x.details.size() != y.details.size()) {
            return false;
        }
        for (std::size_t d = 0; d < x.details.size(); ++d) {
            const LocalDetail& p = x.details[d];
            const LocalDetail& q = y.details[d];
            if (p.id != q.id || p.request_value != q.request_value ||
                p.case_value != q.case_value || p.distance != q.distance ||
                p.dmax != q.dmax || bits(p.weight) != bits(q.weight) ||
                bits(p.similarity) != bits(q.similarity)) {
                return false;
            }
        }
    }
    return true;
}

Retriever::Retriever(const CaseBase& cb, const BoundsTable& bounds,
                     const Amalgamation* amalgamation)
    : cb_(&cb), bounds_(&bounds), amalgamation_(amalgamation) {}

Retriever::Retriever(const CaseBase& cb, const BoundsTable& bounds,
                     const CompiledCaseBase& compiled, const Amalgamation* amalgamation)
    : cb_(&cb), bounds_(&bounds), amalgamation_(amalgamation) {
    bind_compiled(compiled);
}

void Retriever::bind_compiled(const CompiledCaseBase& compiled) {
    QFA_EXPECTS(compiled.source() == cb_,
                "compiled view must be built from the retriever's case base");
    QFA_EXPECTS(compiled.source_bounds() == bounds_,
                "compiled view must be built from the retriever's bounds table");
    compiled_ = &compiled;
}

RetrievalResult Retriever::retrieve(const Request& request,
                                    const RetrievalOptions& options) const {
    validate_options(options);

    RetrievalResult result;
    const FunctionType* type = cb_->find_type(request.type());
    if (type == nullptr) {
        result.status = RetrievalStatus::type_not_found;
        return result;
    }

    const Request normalized = request.normalized();
    const Amalgamation& amalg =
        amalgamation_ != nullptr ? *amalgamation_ : kDefaultAmalgamation;

    std::vector<Match> scored;
    scored.reserve(type->impls.size());
    std::vector<double> locals;
    std::vector<double> weights;
    for (const Implementation& impl : type->impls) {
        ++result.impls_considered;
        locals.clear();
        weights.clear();
        Match match{type->id, impl.id, impl.target, 0.0, {}};
        for_each_constraint_local(
            impl, normalized.constraints(),
            [&](std::size_t, const RequestAttribute& constraint,
                const std::optional<AttrValue>& case_value) {
                ++result.attrs_compared;
                const std::uint32_t dmax = bounds_->dmax(constraint.id);
                // Missing attribute: unsatisfiable requirement, s_i = 0 (§3).
                const double s = case_value
                                     ? local_similarity(options.metric, constraint.value,
                                                        *case_value, dmax)
                                     : 0.0;
                locals.push_back(s);
                weights.push_back(constraint.weight);
                if (options.collect_details) {
                    match.details.push_back(LocalDetail{
                        constraint.id, constraint.value, case_value,
                        case_value ? manhattan_distance(constraint.value, *case_value) : 0,
                        dmax, constraint.weight, s});
                }
            });
        match.similarity = amalg.combine(locals, weights);
        scored.push_back(std::move(match));
    }

    // Rank descending by similarity; ties resolve to the smaller ImplId so
    // results are deterministic.
    std::stable_sort(scored.begin(), scored.end(), [](const Match& a, const Match& b) {
        return ranks_before(a.similarity, a.impl, b.similarity, b.impl);
    });

    for (Match& match : scored) {
        if (match.similarity < options.threshold) {
            continue;  // §3: reject all results below a given threshold
        }
        result.matches.push_back(std::move(match));
        if (result.matches.size() >= options.n_best) {
            break;
        }
    }

    result.status = result.matches.empty() ? RetrievalStatus::all_below_threshold
                                           : RetrievalStatus::ok;
    if (scored.empty()) {
        // A type with no implementations behaves like an unknown type for
        // callers: nothing can be allocated.
        result.status = RetrievalStatus::all_below_threshold;
    }
    return result;
}

RetrievalResult Retriever::retrieve_compiled(const Request& request,
                                             const RetrievalOptions& options,
                                             RetrievalScratch* scratch) const {
    RetrievalScratch local;
    return retrieve_compiled_into(request, options, scratch != nullptr ? *scratch : local);
}

std::vector<RetrievalResult> Retriever::retrieve_batch(std::span<const Request> requests,
                                                       const RetrievalOptions& options,
                                                       RetrievalScratch& scratch) const {
    std::vector<RetrievalResult> results;
    results.reserve(requests.size());
    for (const Request& request : requests) {
        results.push_back(retrieve_compiled_into(request, options, scratch));
    }
    return results;
}

RetrievalResult Retriever::retrieve_compiled_into(const Request& request,
                                                  const RetrievalOptions& options,
                                                  RetrievalScratch& scratch) const {
    validate_options(options);
    QFA_EXPECTS(compiled_ != nullptr,
                "retrieve_compiled needs a bound CompiledCaseBase (bind_compiled)");

    RetrievalResult result;
    const TypePlan* plan = compiled_->find(request.type());
    if (plan == nullptr) {
        result.status = RetrievalStatus::type_not_found;
        return result;
    }
    const std::size_t rows = plan->impl_count;
    result.impls_considered = rows;
    if (rows == 0) {
        result.status = RetrievalStatus::all_below_threshold;
        return result;
    }

    const std::span<const RequestAttribute> constraints = request.constraints();
    const std::size_t n = constraints.size();
    result.attrs_compared = rows * n;
    normalize_weights_into(constraints, scratch);

    std::vector<double>& sims = scratch.acc;
    sims.assign(plan->row_stride, 0.0);  // padded lanes accumulate exactly 0.0

    if (amalgamation_ == nullptr) {
        // Fused weighted-sum fast path, column-major: each constraint
        // streams one contiguous padded column through the runtime-selected
        // SIMD kernel (core/kernels.hpp).  Per accumulator the terms arrive
        // in constraint order with the exact reference operations
        // (d / (1 + dmax), clamp-at-zero as a lane mask, presence as a lane
        // mask, × weight), and lanes are whole rows, so the final sums are
        // bit-identical to WeightedSum::combine at any vector width.
        const kern::KernelTable& kernels = kern::active_kernels();
        for_each_constraint_column(
            *plan, constraints, scratch.columns,
            [&](std::size_t i, const RequestAttribute& constraint, std::size_t c) {
                if (c == TypePlan::npos) {
                    return;  // s_i = 0 everywhere: contributes exactly 0.0
                }
                const std::size_t stride = plan->row_stride;
                const AttrValue* vals = plan->values.data() + c * stride;
                const std::uint16_t* mask = plan->present_mask.data() + c * stride;
                const auto kernel = options.metric == LocalMetric::manhattan
                                        ? kernels.manhattan
                                        : kernels.squared;
                kernel(sims.data(), vals, mask, stride, constraint.value,
                       plan->divisor[c], scratch.norm_weights[i]);
            });
        for (std::size_t r = 0; r < rows; ++r) {
            sims[r] = std::clamp(sims[r], 0.0, 1.0);  // WeightedSum's final clamp
        }
    } else {
        // General path (injected amalgamation): still columnar — the column
        // map replaces the per-(impl × constraint) binary search — but each
        // row materializes its locals for Amalgamation::combine.
        plan->map_columns(constraints, scratch.columns);
        scratch.locals.resize(n);
        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t i = 0; i < n; ++i) {
                const std::size_t c = scratch.columns[i];
                double s = 0.0;
                if (c != TypePlan::npos) {
                    const std::size_t slot = plan->slot(c, r);
                    if (plan->present_mask[slot] != 0) {
                        s = local_similarity(options.metric, constraints[i].value,
                                             plan->values[slot], plan->dmax[c]);
                    }
                }
                scratch.locals[i] = s;
            }
            sims[r] = amalgamation_->combine(scratch.locals, scratch.norm_weights);
        }
    }

    // Bounded top-k selection: a partial heap over the candidate rows keyed
    // on (similarity desc, ImplId asc).  With `ranks_before` as the heap's
    // "less", the front is the worst kept candidate; the final sort yields
    // exactly the first n_best entries of the reference full sort.
    std::vector<std::uint32_t>& heap = scratch.topk;
    heap.clear();
    const auto heap_less = [&](std::uint32_t a, std::uint32_t b) {
        return ranks_before(sims[a], plan->impl_ids[a], sims[b], plan->impl_ids[b]);
    };
    for (std::uint32_t r = 0; r < rows; ++r) {
        if (sims[r] < options.threshold) {
            continue;  // §3 threshold rejection, as in the reference loop
        }
        if (heap.size() < options.n_best) {
            heap.push_back(r);
            std::push_heap(heap.begin(), heap.end(), heap_less);
        } else if (ranks_before(sims[r], plan->impl_ids[r], sims[heap.front()],
                                plan->impl_ids[heap.front()])) {
            std::pop_heap(heap.begin(), heap.end(), heap_less);
            heap.back() = r;
            std::push_heap(heap.begin(), heap.end(), heap_less);
        }
    }
    std::sort(heap.begin(), heap.end(), heap_less);

    result.matches.reserve(heap.size());
    for (const std::uint32_t r : heap) {
        Match match{plan->id, plan->impl_ids[r], plan->targets[r], sims[r], {}};
        if (options.collect_details) {
            collect_plan_details(*plan, r, constraints, scratch.columns,
                                 scratch.norm_weights, options.metric, *bounds_, match);
        }
        result.matches.push_back(std::move(match));
    }

    result.status = result.matches.empty() ? RetrievalStatus::all_below_threshold
                                           : RetrievalStatus::ok;
    return result;
}

std::vector<MatchQ15> Retriever::score_q15(const Request& request) const {
    RetrievalScratch local;
    score_q15_into(request, local);
    return std::move(local.q15_out);
}

std::span<const MatchQ15> Retriever::score_q15_into(const Request& request,
                                                    RetrievalScratch& scratch) const {
    std::vector<MatchQ15>& out = scratch.q15_out;
    out.clear();
    const FunctionType* type = cb_->find_type(request.type());
    if (type == nullptr) {
        return out;
    }

    // Weight normalization + quantization entirely in scratch: no Request
    // copy, no per-call allocation.
    const std::span<const RequestAttribute> constraints = request.constraints();
    normalize_and_quantize_weights_into(constraints, scratch);
    const std::span<const fx::Q15> weights = scratch.q15_weights;

    out.reserve(type->impls.size());
    for (const Implementation& impl : type->impls) {
        fx::SimAccumulator acc;
        for_each_constraint_local(
            impl, constraints,
            [&](std::size_t i, const RequestAttribute& constraint,
                const std::optional<AttrValue>& case_value) {
                const fx::Q15 s =
                    case_value
                        ? cbr::local_similarity_q15(constraint.value, *case_value,
                                                    bounds_->reciprocal(constraint.id))
                        : fx::Q15::zero();
                acc.add_product(s, weights[i]);
            });
        out.push_back(MatchQ15{type->id, impl.id, acc.raw_q30()});
    }
    return out;
}

std::vector<MatchQ15> Retriever::score_q15_compiled(const Request& request,
                                                    RetrievalScratch* scratch) const {
    RetrievalScratch local;
    RetrievalScratch& s = scratch != nullptr ? *scratch : local;
    const std::span<const MatchQ15> scored = score_q15_compiled_into(request, s);
    if (scratch == nullptr) {
        return std::move(local.q15_out);
    }
    return {scored.begin(), scored.end()};
}

std::span<const MatchQ15> Retriever::score_q15_compiled_into(
    const Request& request, RetrievalScratch& s) const {
    QFA_EXPECTS(compiled_ != nullptr,
                "score_q15_compiled needs a bound CompiledCaseBase (bind_compiled)");

    std::vector<MatchQ15>& out = s.q15_out;
    out.clear();
    const TypePlan* plan = compiled_->find(request.type());
    if (plan == nullptr) {
        return out;
    }
    const std::size_t rows = plan->impl_count;

    const std::span<const RequestAttribute> constraints = request.constraints();
    normalize_and_quantize_weights_into(constraints, s);

    s.acc_q30.assign(plan->row_stride, 0);  // padded lanes accumulate exactly 0
    // Same column traversal as the double-precision fast path, through the
    // Q15 SIMD kernel: the AND-masked raw word zeroes sentinel (and
    // padding) slots exactly like the reference's
    // `case_value ? ... : Q15::zero()`, and the arithmetic is exact
    // integer, so lane width cannot change any accumulator.
    const kern::KernelTable& kernels = kern::active_kernels();
    for_each_constraint_column(
        *plan, constraints, s.columns,
        [&](std::size_t i, const RequestAttribute& constraint, std::size_t c) {
            if (c == TypePlan::npos) {
                return;  // s_i = 0 everywhere: adds 0 to every accumulator
            }
            const std::size_t stride = plan->row_stride;
            kernels.q15(s.acc_q30.data(), plan->values.data() + c * stride,
                        plan->present_mask.data() + c * stride, stride,
                        constraint.value, plan->reciprocal[c].raw(),
                        s.q15_weights[i].raw());
        });

    out.reserve(rows);
    for (std::size_t r = 0; r < rows; ++r) {
        out.push_back(MatchQ15{plan->id, plan->impl_ids[r], s.acc_q30[r]});
    }
    return out;
}

std::optional<MatchQ15> Retriever::retrieve_q15(const Request& request,
                                                RetrievalScratch* scratch) const {
    RetrievalScratch local;
    RetrievalScratch& s = scratch != nullptr ? *scratch : local;
    const std::span<const MatchQ15> scored = compiled_ != nullptr
                                                 ? score_q15_compiled_into(request, s)
                                                 : score_q15_into(request, s);
    if (scored.empty()) {
        return std::nullopt;
    }
    // Hardware keeps the first maximum: strict `>` comparison against the
    // running best (fig. 6: "S > S_Best ?").
    std::size_t best = 0;
    for (std::size_t i = 1; i < scored.size(); ++i) {
        if (scored[i].similarity_q30 > scored[best].similarity_q30) {
            best = i;
        }
    }
    return scored[best];
}

}  // namespace qfa::cbr
