#include "core/retrieval.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace qfa::cbr {

namespace {

const WeightedSum kDefaultAmalgamation{};

}  // namespace

const Match& RetrievalResult::best() const {
    QFA_EXPECTS(!matches.empty(), "best() on an empty retrieval result");
    return matches.front();
}

Retriever::Retriever(const CaseBase& cb, const BoundsTable& bounds,
                     const Amalgamation* amalgamation)
    : cb_(&cb), bounds_(&bounds), amalgamation_(amalgamation) {}

RetrievalResult Retriever::retrieve(const Request& request,
                                    const RetrievalOptions& options) const {
    QFA_EXPECTS(options.n_best >= 1, "n_best must be at least 1");

    RetrievalResult result;
    const FunctionType* type = cb_->find_type(request.type());
    if (type == nullptr) {
        result.status = RetrievalStatus::type_not_found;
        return result;
    }

    const Request normalized = request.normalized();
    const Amalgamation& amalg =
        amalgamation_ != nullptr ? *amalgamation_ : kDefaultAmalgamation;

    std::vector<Match> scored;
    scored.reserve(type->impls.size());
    std::vector<double> locals;
    std::vector<double> weights;
    for (const Implementation& impl : type->impls) {
        ++result.impls_considered;
        locals.clear();
        weights.clear();
        Match match{type->id, impl.id, impl.target, 0.0, {}};
        for (const RequestAttribute& constraint : normalized.constraints()) {
            ++result.attrs_compared;
            const std::uint32_t dmax = bounds_->dmax(constraint.id);
            const std::optional<AttrValue> case_value = impl.attribute(constraint.id);
            // Missing attribute: unsatisfiable requirement, s_i = 0 (§3).
            const double s = case_value
                                 ? local_similarity(options.metric, constraint.value,
                                                    *case_value, dmax)
                                 : 0.0;
            locals.push_back(s);
            weights.push_back(constraint.weight);
            if (options.collect_details) {
                match.details.push_back(LocalDetail{
                    constraint.id, constraint.value, case_value,
                    case_value ? manhattan_distance(constraint.value, *case_value) : 0,
                    dmax, constraint.weight, s});
            }
        }
        match.similarity = amalg.combine(locals, weights);
        scored.push_back(std::move(match));
    }

    // Rank descending by similarity; ties resolve to the smaller ImplId so
    // results are deterministic.
    std::stable_sort(scored.begin(), scored.end(), [](const Match& a, const Match& b) {
        if (a.similarity != b.similarity) {
            return a.similarity > b.similarity;
        }
        return a.impl < b.impl;
    });

    for (Match& match : scored) {
        if (match.similarity < options.threshold) {
            continue;  // §3: reject all results below a given threshold
        }
        result.matches.push_back(std::move(match));
        if (result.matches.size() == options.n_best) {
            break;
        }
    }

    result.status = result.matches.empty() ? RetrievalStatus::all_below_threshold
                                           : RetrievalStatus::ok;
    if (scored.empty()) {
        // A type with no implementations behaves like an unknown type for
        // callers: nothing can be allocated.
        result.status = RetrievalStatus::all_below_threshold;
    }
    return result;
}

std::vector<MatchQ15> Retriever::score_q15(const Request& request) const {
    std::vector<MatchQ15> out;
    const FunctionType* type = cb_->find_type(request.type());
    if (type == nullptr) {
        return out;
    }

    const Request normalized = request.normalized();
    const std::vector<fx::Q15> weights = quantize_weights(normalized);
    const auto constraints = normalized.constraints();

    out.reserve(type->impls.size());
    for (const Implementation& impl : type->impls) {
        fx::SimAccumulator acc;
        for (std::size_t i = 0; i < constraints.size(); ++i) {
            const std::optional<AttrValue> case_value = impl.attribute(constraints[i].id);
            const fx::Q15 s =
                case_value ? cbr::local_similarity_q15(constraints[i].value, *case_value,
                                                       bounds_->reciprocal(constraints[i].id))
                           : fx::Q15::zero();
            acc.add_product(s, weights[i]);
        }
        out.push_back(MatchQ15{type->id, impl.id, acc.raw_q30()});
    }
    return out;
}

std::optional<MatchQ15> Retriever::retrieve_q15(const Request& request) const {
    const std::vector<MatchQ15> scored = score_q15(request);
    if (scored.empty()) {
        return std::nullopt;
    }
    // Hardware keeps the first maximum: strict `>` comparison against the
    // running best (fig. 6: "S > S_Best ?").
    std::size_t best = 0;
    for (std::size_t i = 1; i < scored.size(); ++i) {
        if (scored[i].similarity_q30 > scored[best].similarity_q30) {
            best = i;
        }
    }
    return scored[best];
}

}  // namespace qfa::cbr
