// Local similarity measures — eq. (1) of the paper.
//
// A local measure maps the distance between a request attribute x_A and a
// case attribute x_B into [0, 1]: 1 for identical values, 0 at (or beyond)
// the design-global maximum distance.  The paper chooses the
// Manhattan/absolute-difference transformation
//
//     s_i(x_A, x_B) = 1 - d(x_A, x_B) / (1 + max d)            (eq. 1)
//
// because it is cheap in hardware; this module provides it in double
// precision (the reference) and in Q15 (the datapath arithmetic), plus a
// squared-distance variant used to build a Euclidean-flavoured global
// measure for the metric ablation (E13).
#pragma once

#include <cstdint>

#include "core/attribute.hpp"
#include "fixed/q15.hpp"
#include "fixed/reciprocal.hpp"

namespace qfa::cbr {

/// Manhattan distance of two attribute values: |a - b|.
[[nodiscard]] constexpr std::uint32_t manhattan_distance(AttrValue a, AttrValue b) noexcept {
    return fx::attr_distance(a, b);
}

/// Eq. (1) in double precision.  Distances beyond dmax clamp to 0 — a
/// request value outside the design-global bounds has "no similarity".
[[nodiscard]] double local_similarity(AttrValue request_value, AttrValue case_value,
                                      std::uint32_t dmax) noexcept;

/// Eq. (1) in Q15, exactly as the fig. 7 datapath computes it (reciprocal
/// multiply, truncation, saturating subtract).
[[nodiscard]] fx::Q15 local_similarity_q15(AttrValue request_value, AttrValue case_value,
                                           fx::Q15 reciprocal) noexcept;

/// Squared-distance variant: 1 - (d/(1+dmax))^2.  Combined with a weighted
/// sum this yields the Euclidean-style global measure of the E13 ablation.
[[nodiscard]] double local_similarity_squared(AttrValue request_value, AttrValue case_value,
                                              std::uint32_t dmax) noexcept;

/// Local metric selector for the reference retriever.
enum class LocalMetric {
    manhattan,  ///< eq. (1), the paper's choice
    squared,    ///< squared-normalized distance (Euclidean flavour)
};

/// Dispatches on the metric enum.
[[nodiscard]] double local_similarity(LocalMetric metric, AttrValue request_value,
                                      AttrValue case_value, std::uint32_t dmax) noexcept;

}  // namespace qfa::cbr
