// Attribute model: (id, value) pairs plus optional designer schemas.
//
// §2.2: cases are "sets of simple pairs of attributes and their values";
// values are integers (or symbols mapped onto integers) in 16-bit words.
// Typical attribute types named by the paper: data rates, discrete
// processing modes, power consumption, code/bitstream sizes, response
// times, frame sizes, bit-error rates.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/ids.hpp"

namespace qfa::cbr {

/// 16-bit attribute value, as fixed by the paper's hardware (§4.2).
using AttrValue = std::uint16_t;

/// One (attribute-id, value) pair of an implementation description.
struct Attribute {
    AttrId id;
    AttrValue value = 0;

    friend constexpr bool operator==(const Attribute&, const Attribute&) noexcept = default;
};

/// Orders attributes by id — the pre-sorting required by figs. 4/5.
[[nodiscard]] constexpr bool attr_id_less(const Attribute& a, const Attribute& b) noexcept {
    return a.id < b.id;
}

/// True if the span is strictly ascending by attribute id (sorted, no
/// duplicates) — the structural invariant of every list in the paper.
[[nodiscard]] bool attributes_strictly_sorted(std::span<const Attribute> attrs) noexcept;

/// Binary search for an attribute id in a sorted attribute list.
[[nodiscard]] std::optional<AttrValue> find_attribute(std::span<const Attribute> attrs,
                                                      AttrId id) noexcept;

/// Designer-supplied description of one attribute type: used for
/// pretty-printing, unit bookkeeping and workload generation.  Purely
/// informational — retrieval itself only needs ids and values.
struct AttrSchema {
    AttrId id;
    std::string name;         ///< e.g. "bitwidth", "sampling-rate"
    std::string unit;         ///< e.g. "bit", "kS/s", "mW"
    bool symbolic = false;    ///< true for enumerations mapped onto integers
};

/// Registry of attribute schemas keyed by id.
class SchemaRegistry {
public:
    /// Registers (or replaces) a schema.
    void add(AttrSchema schema);

    /// Looks up a schema; nullptr when the id is unknown.
    [[nodiscard]] const AttrSchema* find(AttrId id) const noexcept;

    /// Name for display: schema name or "attr#N" fallback.
    [[nodiscard]] std::string display_name(AttrId id) const;

    [[nodiscard]] std::size_t size() const noexcept { return schemas_.size(); }

private:
    std::unordered_map<AttrId, AttrSchema> schemas_;
};

/// The schema set used by the paper's running example (fig. 3): bitwidth,
/// processing mode (integer/float), output mode (mono/stereo/surround) and
/// sampling rate.
[[nodiscard]] SchemaRegistry paper_example_schemas();

}  // namespace qfa::cbr
