// SLO vocabulary for the serving engine's overload path.
//
// The paper's §3 allocation platform may "reject requests the platform
// cannot serve"; closed-loop callers never see that case because bounded
// queues block them at capacity.  Open-loop traffic (arrivals on a clock,
// not gated on completions) makes overload the steady state, and the engine
// then needs a typed answer for every request it cannot serve in time:
// refuse it at admission, expire it at dequeue, or shed it from the backlog
// to protect higher-priority work.  This header defines that vocabulary —
// tenants, deadlines, admission outcomes, shedding policy — shared by the
// engine (serve/engine.hpp) and the allocation manager's batch front-end
// (alloc/manager.hpp) without either including the other.
//
// Outcome taxonomy (disjoint, exhaustive for one request):
//   rejected   — never entered a queue (admission said no: full backlog,
//                engine shutting down, or a deadline already infeasible)
//   expired    — entered a queue but its deadline passed before a worker
//                reached it; dropped on dequeue, future resolves with
//                DeadlineExceeded (never silently)
//   shed       — removed from the backlog by the load shedder to make room
//                for higher-priority work; future resolves with LoadShed
//   served     — completed with a result, bit-identical to the
//                single-threaded compiled path at the pinned epoch
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <optional>
#include <stdexcept>
#include <string_view>

#include "core/retrieval.hpp"

namespace qfa::serve {

/// Multi-tenant traffic tag (§5's "several applications").  Tenant 0 is the
/// default for single-tenant callers; ids need no registration — counters
/// materialize on first use.
using TenantId = std::uint16_t;

/// A queued request's deadline passed before a worker reached it.  The
/// future resolves with this — expiry is never silent.
class DeadlineExceeded : public std::runtime_error {
public:
    DeadlineExceeded() : std::runtime_error("retrieval deadline exceeded before service") {}
};

/// The load shedder removed the request from the backlog to make room for
/// higher-priority work.  The future resolves with this.
class LoadShed : public std::runtime_error {
public:
    LoadShed() : std::runtime_error("retrieval shed under overload") {}
};

/// What the engine does when the admission path finds the target shard's
/// backlog full (or past its watermark).
enum class AdmissionPolicy : std::uint8_t {
    reject_new,   ///< refuse the incoming request (queue_full)
    shed_lowest,  ///< evict the lowest-priority queued victim, then admit
};

/// Overload-behavior knobs (EngineConfig::admission).  All bounds are "0 =
/// disabled"; a default-constructed config admits everything the queue
/// capacity admits, i.e. PR-4 behavior.
struct AdmissionConfig {
    /// Per-shard backlog bound for the admission path, tighter than the
    /// queue capacity (0 = use the capacity alone).
    std::size_t max_queue_depth = 0;
    /// Engine-wide cap on admitted-but-unresolved retrievals (0 = none).
    std::size_t max_inflight = 0;
    AdmissionPolicy policy = AdmissionPolicy::reject_new;
    /// Shed proactively once a shard's depth reaches this (0 = only when
    /// full; only meaningful under shed_lowest).
    std::size_t shed_depth_watermark = 0;
    /// Shed proactively once the oldest queued job has waited this long
    /// (zero = disabled; only meaningful under shed_lowest).
    std::chrono::steady_clock::duration shed_latency_watermark{0};
};

/// Typed admission outcome.
enum class AdmissionStatus : std::uint8_t {
    admitted,             ///< in a queue; the future will resolve
    queue_full,           ///< refused: backlog/inflight bound hit
    shutting_down,        ///< refused: the engine is stopping
    deadline_infeasible,  ///< refused: the deadline already passed at admission
};

[[nodiscard]] constexpr std::string_view admission_status_name(AdmissionStatus status) {
    switch (status) {
        case AdmissionStatus::admitted: return "admitted";
        case AdmissionStatus::queue_full: return "queue_full";
        case AdmissionStatus::shutting_down: return "shutting_down";
        case AdmissionStatus::deadline_infeasible: return "deadline_infeasible";
    }
    return "?";
}

/// What try_submit / submit_until hand back: a status, and a future only
/// when admitted (rejections resolve nothing — the status is the answer,
/// and the caller never blocks on a request the engine refused).
struct AdmissionResult {
    AdmissionStatus status = AdmissionStatus::shutting_down;
    std::future<cbr::RetrievalResult> future;  ///< valid iff admitted()
    [[nodiscard]] bool admitted() const noexcept {
        return status == AdmissionStatus::admitted;
    }
};

/// Per-request SLO class carried alongside the retrieval itself.
struct JobClass {
    TenantId tenant = 0;
    /// Shedding rank; higher wins, matching sys::Priority's preemption
    /// convention (sysmodel/task.hpp) so alloc can pass its priority through.
    std::uint8_t priority = 10;
    /// Absolute completion deadline; requests past it are refused at
    /// admission and dropped (DeadlineExceeded) at dequeue.
    std::optional<std::chrono::steady_clock::time_point> deadline = std::nullopt;
    /// When set, the worker stamps the service-completion instant here
    /// immediately before resolving the future — the future's happens-before
    /// makes the stamp safely readable after future.get()/wait() returns.
    /// The open-loop harness uses this to time latency without a second
    /// clock read racing the caller.
    std::chrono::steady_clock::time_point* completed_at = nullptr;
};

/// Admission-side deadline test: a deadline at or before `now` cannot be
/// met (even a zero-cost retrieval completes no earlier than now), so
/// d <= now is refused.  The boundary is deliberately different from
/// expired_on_dequeue: d == now is infeasible to *admit* but not yet
/// expired once queued.
[[nodiscard]] constexpr bool admission_infeasible(
    std::chrono::steady_clock::time_point deadline,
    std::chrono::steady_clock::time_point now) noexcept {
    return deadline <= now;
}

/// Dequeue-side expiry test: a job whose deadline is exactly the dequeue
/// instant is still served (the deadline has not *passed*); only d < now
/// is dropped.
[[nodiscard]] constexpr bool expired_on_dequeue(
    std::chrono::steady_clock::time_point deadline,
    std::chrono::steady_clock::time_point now) noexcept {
    return deadline < now;
}

}  // namespace qfa::serve
