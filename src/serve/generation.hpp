// Epoch-based catalogue publication — RCU for compiled retrieval plans.
//
// The paper compiles the case base into supplemental word lists at design
// time (§3, figs. 4/5) and §5 names run-time case-base update as the open
// extension.  Updating a *served* catalogue poses the classic
// reader/writer problem: retrieval threads are streaming the compiled
// columns while retain() wants to replace them.  The serve layer resolves
// it the RCU way — immutability plus epoch swap:
//
//  * a Generation bundles one immutable catalogue state: the tree
//    (CaseBase), the design-global supplemental table (BoundsTable), the
//    compiled columnar plans built from exactly those two, and the epoch
//    counter identifying the state;
//  * readers pin a Generation with one atomic shared_ptr load and score
//    against it for the duration of a request — they can never observe a
//    torn column, because nothing a reader can reach is ever written again;
//  * the writer builds the successor Generation off to the side (usually
//    with CompiledCaseBase::patched, so a retain costs one row splice, not
//    a recompile) and publishes it with one atomic store;
//  * the last reader dropping its shared_ptr frees the retired epoch —
//    there is no grace-period machinery to get wrong.
//
// Thread safety: Generation is deeply immutable after make_generation /
// patch_generation returns.  PlanStore::load is safe from any thread and
// never blocks on a publish in progress (the libstdc++ atomic<shared_ptr>
// control word is the only contention point); publishers must be
// serialized by the caller — see PlanStore::publish.
#pragma once

#include <cstdint>
#include <memory>

#include "core/bounds.hpp"
#include "core/case_base.hpp"
#include "core/compiled.hpp"
#include "core/ids.hpp"

namespace qfa::serve {

/// One immutable, epoch-tagged catalogue state.  The compiled plans point
/// into the sibling case_base/bounds members, so the three always retire
/// together — holding the shared_ptr keeps every pointer a reader can
/// reach alive.
struct Generation {
    std::uint64_t epoch = 0;
    cbr::CaseBase case_base;
    cbr::BoundsTable bounds;
    cbr::CompiledCaseBase compiled;  ///< built from the two members above
};

using GenerationPtr = std::shared_ptr<const Generation>;

/// Builds a generation by full compilation (engine start-up, or the
/// fallback when no predecessor exists).
[[nodiscard]] GenerationPtr make_generation(std::uint64_t epoch, cbr::CaseBase case_base,
                                            cbr::BoundsTable bounds);

/// Builds the successor of `previous` after a mutation confined to
/// `changed` (retain / remove / add_type), via CompiledCaseBase::patched:
/// untouched type plans are copied wholesale, the changed type is spliced
/// or recompiled, and widened bounds are re-read into every plan's
/// supplemental columns.  Bit-identical to make_generation on the same
/// inputs.
[[nodiscard]] GenerationPtr patch_generation(const Generation& previous,
                                             std::uint64_t epoch, cbr::CaseBase case_base,
                                             cbr::BoundsTable bounds, cbr::TypeId changed);

/// The single publication point readers and the writer share.
class PlanStore {
public:
    explicit PlanStore(GenerationPtr initial);

    /// Pins the current generation (atomic acquire load; never blocks on a
    /// concurrent publish).
    [[nodiscard]] GenerationPtr load() const noexcept;

    /// Publishes a successor (atomic release store).  Readers that already
    /// pinned the predecessor finish their request on it; new loads see
    /// `next`.  Epochs must be published in strictly increasing order, and
    /// *publishers must be externally serialized* (the engine's writer
    /// mutex does this): the epoch-order precondition is checked
    /// check-then-store, so two racing publishers could both pass it and
    /// commit out of order.  load() stays safe from any thread concurrently
    /// with a publish.
    void publish(GenerationPtr next);

private:
    std::atomic<GenerationPtr> current_;
};

}  // namespace qfa::serve
