// Bounded MPMC job queue — the serving engine's request mailbox.
//
// §5's outlook has "several applications" issuing QoS requests against one
// case base; the serve layer realizes that as producer threads pushing jobs
// into per-shard queues drained by worker threads.  The queue is
// deliberately a plain mutex + two-condition-variable monitor rather than a
// lock-free ring: one retrieval costs microseconds (a full column sweep per
// constraint), so enqueue overhead is noise, and the monitor form is
// trivially correct under ThreadSanitizer.  Capacity bounds give
// backpressure; the admission layer (serve/engine.hpp) chooses per call
// whether a producer at capacity blocks (push), blocks up to a deadline
// (push_until) or is refused immediately with a typed reason
// (try_push_status) — the §3 "reject requests the platform cannot serve"
// analogue under overload.
//
// Ordering.  The default discipline is FIFO.  A queue constructed with a
// deadline extractor instead pops earliest-deadline-first (EDF): the item
// whose extracted deadline is smallest is served next; items without a
// deadline rank as infinitely late, and all ties (including every
// no-deadline item) break towards arrival order.  EDF only reorders *when*
// an item is popped, never what it contains — consumers that compute pure
// functions of the items produce the same per-item results either way.
//
// Thread safety: every member is safe to call from any number of producer
// and consumer threads concurrently.  close() wakes all waiters; items
// already queued are still drained (graceful shutdown), pushes after close
// are refused.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <utility>

#include "util/contracts.hpp"

namespace qfa::serve {

/// Why a bounded push did or did not enqueue its item.
enum class PushStatus : std::uint8_t {
    accepted,   ///< the item is in the queue
    full,       ///< refused: at capacity (try_push_status only)
    timed_out,  ///< refused: still full at the deadline (push_until only)
    closed,     ///< refused: the queue no longer accepts work
};

template <typename T>
class BoundedMpmcQueue {
public:
    /// Optional EDF hook: extracts an item's deadline (nullopt = none —
    /// ranks after every deadlined item, in arrival order).
    using DeadlineFn =
        std::function<std::optional<std::chrono::steady_clock::time_point>(const T&)>;

    /// FIFO by default; passing a deadline extractor makes the queue
    /// EDF-ordered — pop() serves the earliest extracted deadline first
    /// (see the header comment for the tie rules).
    explicit BoundedMpmcQueue(std::size_t capacity, DeadlineFn deadline_of = nullptr)
        : capacity_(capacity), deadline_of_(std::move(deadline_of)) {
        QFA_EXPECTS(capacity >= 1, "queue capacity must be at least 1");
    }

    BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
    BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

    /// Blocks while the queue is full; false when it was closed instead
    /// (the item is dropped — the caller owns failure signalling).
    bool push(T item) {
        std::unique_lock lock(mutex_);
        not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
        if (closed_) {
            return false;
        }
        items_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /// Bulk enqueue: moves every item into the queue in order under ONE
    /// lock acquisition (a per-job push pays a lock round-trip each; the
    /// batch front-ends pay one per shard per batch).  Returns the number
    /// of items accepted: items.size() normally, fewer when the queue was
    /// closed mid-batch — the tail items are left untouched in `items` and
    /// failure signalling for them stays with the caller, as in push().
    ///
    /// Wake discipline: when the whole batch fits below capacity, the
    /// inserts happen under the lock but every not_empty_ wake is issued
    /// *after* unlock — a consumer woken mid-batch would otherwise run
    /// straight into the still-held mutex and block again (one spurious
    /// context-switch round-trip per item).  Only the over-capacity
    /// feeding path keeps the per-insert wake while holding the lock: the
    /// producer is about to wait on not_full_ there, and the consumer it
    /// wakes is what creates the space that lets the batch progress.
    std::size_t push_all(std::span<T> items) {
        std::size_t accepted = 0;
        std::unique_lock lock(mutex_);
        if (!closed_ && items.size() <= capacity_ - items_.size()) {
            for (T& item : items) {
                items_.push_back(std::move(item));
                ++accepted;
            }
            lock.unlock();
            for (std::size_t i = 0; i < accepted; ++i) {
                not_empty_.notify_one();
            }
            return accepted;
        }
        for (T& item : items) {
            not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
            if (closed_) {
                break;
            }
            items_.push_back(std::move(item));
            ++accepted;
            not_empty_.notify_one();
        }
        return accepted;
    }

    /// Non-blocking push; false when full or closed.
    bool try_push(T item) {
        return try_push_status(std::move(item)) == PushStatus::accepted;
    }

    /// Non-blocking push with a typed refusal reason — the admission
    /// layer's primitive: `full` and `closed` need different answers to
    /// the caller (retry-later vs give-up).  The item is dropped on
    /// refusal, exactly as in push().
    PushStatus try_push_status(T item) {
        {
            std::lock_guard lock(mutex_);
            if (closed_) {
                return PushStatus::closed;
            }
            if (items_.size() >= capacity_) {
                return PushStatus::full;
            }
            items_.push_back(std::move(item));
        }
        not_empty_.notify_one();
        return PushStatus::accepted;
    }

    /// Deadline-bounded push: blocks while the queue is full, but only
    /// until `deadline` — the middle ground between push() (may wait
    /// forever) and try_push_status() (never waits).  timed_out when the
    /// queue was still full at the deadline; closed when it was closed
    /// first; the item is dropped on either refusal.
    PushStatus push_until(T item, std::chrono::steady_clock::time_point deadline) {
        std::unique_lock lock(mutex_);
        if (!not_full_.wait_until(lock, deadline,
                                  [&] { return items_.size() < capacity_ || closed_; })) {
            return PushStatus::timed_out;
        }
        if (closed_) {
            return PushStatus::closed;
        }
        items_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return PushStatus::accepted;
    }

    /// Waits until the depth drops below `depth`, the queue closes, or the
    /// deadline passes; true when depth < `depth` held at return.  Purely
    /// advisory — a racing producer may refill the freed slot before the
    /// caller acts on the answer (admission layers re-check under
    /// try_push_status and loop).
    bool wait_below(std::size_t depth, std::chrono::steady_clock::time_point deadline) {
        std::unique_lock lock(mutex_);
        (void)not_full_.wait_until(lock, deadline,
                                   [&] { return items_.size() < depth || closed_; });
        return items_.size() < depth;
    }

    /// Blocks while the queue is empty; nullopt once closed *and* drained.
    /// FIFO queues serve arrival order; EDF queues serve the earliest
    /// extracted deadline (header comment).
    std::optional<T> pop() {
        std::unique_lock lock(mutex_);
        not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
        if (items_.empty()) {
            return std::nullopt;  // closed and fully drained
        }
        const std::size_t slot = deadline_of_ == nullptr ? 0 : earliest_locked();
        T item = std::move(items_[slot]);
        items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(slot));
        lock.unlock();
        not_full_.notify_one();
        return item;
    }

    /// Non-blocking pop: the item pop() would serve next (FIFO front, or
    /// the earliest deadline in EDF mode), or nullopt when the queue is
    /// empty — whether or not it is closed.  Wake discipline matches
    /// pop(): a successful try_pop frees a slot and wakes one not_full_
    /// waiter, so a work-stealing consumer draining through try_pop can
    /// never strand a producer blocked at capacity or an admission layer
    /// parked in wait_below.
    std::optional<T> try_pop() {
        std::unique_lock lock(mutex_);
        if (items_.empty()) {
            return std::nullopt;
        }
        const std::size_t slot = deadline_of_ == nullptr ? 0 : earliest_locked();
        T item = std::move(items_[slot]);
        items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(slot));
        lock.unlock();
        not_full_.notify_one();
        return item;
    }

    /// Deadline-bounded pop: blocks while the queue is empty, but only
    /// until `deadline`.  nullopt on timeout AND on closed-and-drained —
    /// callers that must distinguish re-check closed()/size() (a closed
    /// queue refuses pushes, so closed + empty is a stable end state).
    /// Shard workers with a steal path park here instead of in pop(), so
    /// an empty home queue never blocks them past one victim-scan period.
    std::optional<T> pop_until(std::chrono::steady_clock::time_point deadline) {
        std::unique_lock lock(mutex_);
        (void)not_empty_.wait_until(lock, deadline,
                                    [&] { return !items_.empty() || closed_; });
        if (items_.empty()) {
            return std::nullopt;  // timed out, or closed and fully drained
        }
        const std::size_t slot = deadline_of_ == nullptr ? 0 : earliest_locked();
        T item = std::move(items_[slot]);
        items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(slot));
        lock.unlock();
        not_full_.notify_one();
        return item;
    }

    /// Removes and returns the queued item `select` picks, or nullopt when
    /// it picks none.  `select` receives the queue's items (front = oldest)
    /// under the lock and returns an index, or >= size() for "none" —
    /// it must not touch the queue and should be O(n) at worst.  The load
    /// shedder uses this to pull the lowest-priority victim out of a deep
    /// backlog; the freed slot wakes one blocked producer.
    template <typename Select>
    std::optional<T> extract(Select&& select) {
        std::unique_lock lock(mutex_);
        const std::size_t slot = select(static_cast<const std::deque<T>&>(items_));
        if (slot >= items_.size()) {
            return std::nullopt;
        }
        T item = std::move(items_[slot]);
        items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(slot));
        lock.unlock();
        not_full_.notify_one();
        return item;
    }

    /// Refuses further pushes and wakes every waiter.  Idempotent; queued
    /// items remain poppable so shutdown never loses accepted work.
    void close() {
        {
            std::lock_guard lock(mutex_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    [[nodiscard]] bool closed() const {
        std::lock_guard lock(mutex_);
        return closed_;
    }

    /// Advisory depth observer: exact at the instant the lock was held,
    /// stale the instant it returns — watermark shedders and admission
    /// checks treat it as a hint and re-check where exactness matters.
    /// Coherence guarantee: every observation is in [0, capacity()], and
    /// with only pushes (or only pops) running, consecutive observations
    /// from one thread are monotone.
    [[nodiscard]] std::size_t size() const {
        std::lock_guard lock(mutex_);
        return items_.size();
    }

    /// Immutable bound; together with size() this is the advisory depth
    /// pair the engine's watermark shedder reads.
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

private:
    /// Index of the earliest-deadline item (EDF mode).  Caller holds the
    /// lock; items_ is non-empty.  No-deadline items rank infinitely late;
    /// all ties break towards the smaller index (arrival order).
    [[nodiscard]] std::size_t earliest_locked() const {
        std::size_t best = 0;
        std::optional<std::chrono::steady_clock::time_point> best_deadline =
            deadline_of_(items_[0]);
        for (std::size_t i = 1; i < items_.size(); ++i) {
            const std::optional<std::chrono::steady_clock::time_point> deadline =
                deadline_of_(items_[i]);
            if (deadline.has_value() &&
                (!best_deadline.has_value() || *deadline < *best_deadline)) {
                best = i;
                best_deadline = deadline;
            }
        }
        return best;
    }

    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> items_;
    std::size_t capacity_;
    DeadlineFn deadline_of_;  ///< nullptr = FIFO; set = EDF ordering
    bool closed_ = false;
};

}  // namespace qfa::serve
