// Bounded MPMC job queue — the serving engine's request mailbox.
//
// §5's outlook has "several applications" issuing QoS requests against one
// case base; the serve layer realizes that as producer threads pushing jobs
// into per-shard queues drained by worker threads.  The queue is
// deliberately a plain mutex + two-condition-variable monitor rather than a
// lock-free ring: one retrieval costs microseconds (a full column sweep per
// constraint), so enqueue overhead is noise, and the monitor form is
// trivially correct under ThreadSanitizer.  Capacity bounds give
// backpressure: a producer outrunning the shards blocks instead of growing
// an unbounded backlog (the admission analogue of §3's "reject requests the
// platform cannot serve").
//
// Thread safety: every member is safe to call from any number of producer
// and consumer threads concurrently.  close() wakes all waiters; items
// already queued are still drained (graceful shutdown), pushes after close
// are refused.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <utility>

#include "util/contracts.hpp"

namespace qfa::serve {

template <typename T>
class BoundedMpmcQueue {
public:
    explicit BoundedMpmcQueue(std::size_t capacity) : capacity_(capacity) {
        QFA_EXPECTS(capacity >= 1, "queue capacity must be at least 1");
    }

    BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
    BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

    /// Blocks while the queue is full; false when it was closed instead
    /// (the item is dropped — the caller owns failure signalling).
    bool push(T item) {
        std::unique_lock lock(mutex_);
        not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
        if (closed_) {
            return false;
        }
        items_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /// Bulk enqueue: moves every item into the queue in order under ONE
    /// lock acquisition (a per-job push pays a lock round-trip each; the
    /// batch front-ends pay one per shard per batch).  Returns the number
    /// of items accepted: items.size() normally, fewer when the queue was
    /// closed mid-batch — the tail items are left untouched in `items` and
    /// failure signalling for them stays with the caller, as in push().
    ///
    /// Wake discipline: when the whole batch fits below capacity, the
    /// inserts happen under the lock but every not_empty_ wake is issued
    /// *after* unlock — a consumer woken mid-batch would otherwise run
    /// straight into the still-held mutex and block again (one spurious
    /// context-switch round-trip per item).  Only the over-capacity
    /// feeding path keeps the per-insert wake while holding the lock: the
    /// producer is about to wait on not_full_ there, and the consumer it
    /// wakes is what creates the space that lets the batch progress.
    std::size_t push_all(std::span<T> items) {
        std::size_t accepted = 0;
        std::unique_lock lock(mutex_);
        if (!closed_ && items.size() <= capacity_ - items_.size()) {
            for (T& item : items) {
                items_.push_back(std::move(item));
                ++accepted;
            }
            lock.unlock();
            for (std::size_t i = 0; i < accepted; ++i) {
                not_empty_.notify_one();
            }
            return accepted;
        }
        for (T& item : items) {
            not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
            if (closed_) {
                break;
            }
            items_.push_back(std::move(item));
            ++accepted;
            not_empty_.notify_one();
        }
        return accepted;
    }

    /// Non-blocking push; false when full or closed.
    bool try_push(T item) {
        {
            std::lock_guard lock(mutex_);
            if (closed_ || items_.size() >= capacity_) {
                return false;
            }
            items_.push_back(std::move(item));
        }
        not_empty_.notify_one();
        return true;
    }

    /// Blocks while the queue is empty; nullopt once closed *and* drained.
    std::optional<T> pop() {
        std::unique_lock lock(mutex_);
        not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
        if (items_.empty()) {
            return std::nullopt;  // closed and fully drained
        }
        T item = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return item;
    }

    /// Refuses further pushes and wakes every waiter.  Idempotent; queued
    /// items remain poppable so shutdown never loses accepted work.
    void close() {
        {
            std::lock_guard lock(mutex_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    [[nodiscard]] bool closed() const {
        std::lock_guard lock(mutex_);
        return closed_;
    }

    [[nodiscard]] std::size_t size() const {
        std::lock_guard lock(mutex_);
        return items_.size();
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

private:
    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> items_;
    std::size_t capacity_;
    bool closed_ = false;
};

}  // namespace qfa::serve
