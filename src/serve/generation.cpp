#include "serve/generation.hpp"

#include <utility>

#include "util/contracts.hpp"

namespace qfa::serve {

namespace {

/// Allocates the generation shell first so the compiled plans can be built
/// against the members' final addresses (CompiledCaseBase keeps pointers to
/// its sources for the bind-time identity checks).
std::shared_ptr<Generation> make_shell(std::uint64_t epoch, cbr::CaseBase case_base,
                                       cbr::BoundsTable bounds) {
    auto generation = std::make_shared<Generation>();
    generation->epoch = epoch;
    generation->case_base = std::move(case_base);
    generation->bounds = std::move(bounds);
    return generation;
}

}  // namespace

GenerationPtr make_generation(std::uint64_t epoch, cbr::CaseBase case_base,
                              cbr::BoundsTable bounds) {
    auto generation = make_shell(epoch, std::move(case_base), std::move(bounds));
    generation->compiled = cbr::CompiledCaseBase(generation->case_base, generation->bounds);
    return generation;
}

GenerationPtr patch_generation(const Generation& previous, std::uint64_t epoch,
                               cbr::CaseBase case_base, cbr::BoundsTable bounds,
                               cbr::TypeId changed) {
    QFA_EXPECTS(epoch > previous.epoch, "successor epochs must strictly increase");
    auto generation = make_shell(epoch, std::move(case_base), std::move(bounds));
    generation->compiled = cbr::CompiledCaseBase::patched(
        previous.compiled, generation->case_base, generation->bounds, changed);
    return generation;
}

PlanStore::PlanStore(GenerationPtr initial) : current_(std::move(initial)) {
    QFA_EXPECTS(current_.load() != nullptr, "plan store needs an initial generation");
}

GenerationPtr PlanStore::load() const noexcept {
    return current_.load(std::memory_order_acquire);
}

void PlanStore::publish(GenerationPtr next) {
    QFA_EXPECTS(next != nullptr, "cannot publish a null generation");
    QFA_EXPECTS(next->epoch > load()->epoch, "epochs must be published in order");
    current_.store(std::move(next), std::memory_order_release);
}

}  // namespace qfa::serve
