// The sharded serving engine — fig. 1's allocation manager as an always-on
// multi-core service.
//
// §5's outlook is explicit: the allocation manager is meant to serve "the
// dynamic allocation of functions requested by several applications" at run
// time, and the retrieval unit exists because software retrieval was the
// bottleneck (§4's ~8.5x hardware speedup).  On a multi-core host the same
// bottleneck is answered with parallelism instead of RTL: this engine
// partitions the compiled type plans (core/compiled.hpp) across worker
// threads and serves retrievals from all cores at once.
//
//  * Sharding.  Function types are distributed over `shard_count` shards by
//    TypeId (shard_of).  Every request names exactly one type (fig. 4's
//    request list starts with the basic-function id), so a request is
//    served entirely by one shard — no cross-shard coordination, no
//    locking on the hot path.  Each worker owns a private RetrievalScratch,
//    so steady-state retrieval performs no allocation and no sharing.
//  * Queueing.  Producers (application threads) push jobs into the target
//    shard's bounded MPMC queue (serve/queue.hpp) and receive a
//    std::future for the result; backpressure is by blocking at capacity.
//  * Epochs.  The catalogue lives in a PlanStore (serve/generation.hpp).
//    Workers pin the current Generation per job; retain()/revise() build
//    the successor with an incremental plan patch and publish it with one
//    atomic swap — readers never block on a writer, writers never wait for
//    readers (§5's "dynamic update mechanisms" without a stop-the-world).
//  * Stealing (opt-in, EngineConfig::steal).  A worker whose queue runs
//    dry takes the exact job a backlogged sibling's pop() would serve
//    next, epoch-pinned at service time — skew-proofing for Zipf-hot
//    types.  NUMA placement (EngineConfig::numa + QFA_NUMA=ON) pins
//    workers and their home shards' plan columns to one node and makes
//    thieves prefer same-node victims.  See docs/ARCHITECTURE.md §3.
//
// Bit-identity: a retrieval served by any shard at epoch E performs exactly
// the floating-point / Q15 operations of the single-threaded
// Retriever::retrieve_compiled against generation E — sharding only decides
// *where* a plan is scored, never *how*.
//
// Beyond retrievals, the shards double as a general execution substrate:
// execute() / execute_batch() enqueue type-erased closures that run on a
// named shard's worker thread, interleaved FIFO with that shard's
// retrieval jobs.  Layers above use this to follow the workload onto the
// cores without spawning threads of their own — the allocation manager's
// batch pipeline runs its bypass-probe stage and its speculative
// feasibility stage this way (alloc/manager.cpp).
//
// Thread safety: submit / submit_batch / retrieve_all / execute /
// execute_batch / retain / add_type / remove_implementation / current /
// epoch / stats are all safe from any thread.  Mutations serialize on an
// internal writer mutex; retrievals never take it.  shutdown() (and the
// destructor) closes the queues, drains accepted jobs and joins the
// workers.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "backend/backend.hpp"
#include "core/retain.hpp"
#include "core/retrieval.hpp"
#include "serve/admission.hpp"
#include "serve/generation.hpp"
#include "serve/queue.hpp"
#include "util/rng.hpp"

namespace qfa::serve {

/// Work-stealing knobs (EngineConfig::steal).  Stealing answers shard
/// skew: TypeId sharding turns a Zipf-hot type into one hot worker while
/// its siblings idle, so p999 under 90/10 skew is queue-depth-bound, not
/// hardware-bound.  A thief only ever takes the EXACT job the victim's own
/// pop() would serve next (FIFO front / earliest deadline under EDF), so a
/// steal can never bypass a nearer-deadline or earlier-arrived job the
/// home worker would have taken — it only moves that job to an idle core.
/// Execute closures are never stolen (they are the run-on-*this*-shard
/// primitive; moving one would change which thread runs it).
struct StealConfig {
    /// Off by default: like `edf`, stealing changes only *when/where* a
    /// queued job runs, never what it computes, but it relaxes execute()'s
    /// same-shard FIFO-interleave guarantee (a stolen retrieval may
    /// complete on another worker after an execute enqueued behind it), so
    /// it is opt-in.
    bool enabled = false;
    /// A victim qualifies only at this backlog depth or more — stealing
    /// the last queued job from a worker that is about to pop it anyway is
    /// churn, not balance.
    std::size_t min_victim_depth = 2;
    /// 0 = steal only when the own queue is dry.  > 0: also lend a hand
    /// after serving an own job whenever the remaining own depth is below
    /// this watermark (the "shallow backlog, deep sibling" case).
    std::size_t own_watermark = 0;
    /// How long an idle worker parks on its own queue between victim
    /// scans.  Bounds steal latency from one side and scan overhead from
    /// the other; wakes early the instant home work arrives.
    std::chrono::steady_clock::duration park = std::chrono::microseconds(200);
};

/// Fault-tolerance knobs (EngineConfig::fault): what the engine does when
/// a backend that ACCEPTED a request fails at runtime (backend.hpp's
/// BackendError vocabulary — capability declines stay on the counted
/// cpu-simd fallback path and never touch these).
///
/// The recovery ladder per request: retryable failures (transient /
/// timeout / integrity) get up to `max_retries` re-submissions against the
/// same backend with deterministic linear backoff; exhaustion — or a
/// permanent failure — fails the request over to the exact cpu-simd
/// fallback.  Because cpu-simd is exact and failover is per-request, a
/// request served through ANY point of the ladder returns the same bits
/// the all-cpu-simd reference would.
///
/// The circuit breaker (per shard × assigned backend) quarantines a
/// backend that keeps failing: `breaker_threshold` consecutive failures
/// open it (traffic goes straight to fallback, no scoring attempt), the
/// next `breaker_cooldown` requests ride out the quarantine, then the
/// breaker half-opens and probes with REAL requests — a probe success
/// streak of `breaker_probe_successes` closes it, a probe failure reopens
/// a full cooldown.  Every transition is counted in EngineStats.
struct FaultToleranceConfig {
    /// Retries per request for retryable failures before failover; the
    /// first attempt is not a retry.  0 = fail over immediately.
    std::size_t max_retries = 2;
    /// Deterministic linear backoff: the k-th retry (1-based) sleeps
    /// k * backoff_base on the worker.  Zero = no sleep (tests, and any
    /// deployment where the fallback is cheaper than waiting).
    std::chrono::steady_clock::duration backoff_base = std::chrono::microseconds(100);
    /// Consecutive failures (across requests, counted per attempt) that
    /// open the breaker.  0 disables the breaker entirely.
    std::size_t breaker_threshold = 8;
    /// Requests routed straight to fallback while open before the breaker
    /// half-opens and probes.
    std::size_t breaker_cooldown = 64;
    /// Consecutive probe successes that close a half-open breaker.
    std::size_t breaker_probe_successes = 1;
    /// poll() attempts per submit before the silence becomes a `timeout`
    /// failure (stuck-ticket guard).  0 = unbounded — then only engine
    /// shutdown interrupts a ticket that never completes.
    std::size_t poll_budget = 4096;
};

/// Engine shape knobs.
struct EngineConfig {
    std::size_t shard_count = 4;      ///< worker threads / plan partitions
    std::size_t queue_capacity = 1024;  ///< per-shard backlog bound
    AdmissionConfig admission;        ///< overload knobs for the try_submit path
    /// Opt-in earliest-deadline-first dequeue per shard.  Changes only
    /// *when* a queued job is served, never what it computes — each
    /// completed retrieval stays bit-identical to FIFO's result for the
    /// same request — but it relaxes execute()'s FIFO-interleaving
    /// guarantee, so it is off by default.
    bool edf = false;
    StealConfig steal;                ///< skew answer: epoch-pinned work stealing
    /// Opt-in NUMA placement (needs a QFA_NUMA=ON Linux build to do
    /// anything; advisory everywhere — see util/numa.hpp).  When live:
    /// shard i's worker is pinned to node i % node_count, the plan payload
    /// columns of the types shard i owns are mbind-preferred onto that
    /// same node (exact + present-mask + Q8 tiers, re-applied per
    /// published epoch for changed plans), and steals prefer same-node
    /// victims before crossing the interconnect.
    bool numa = false;
    /// Retrieval backend every shard scores through, by registry name
    /// (src/backend: "cpu-simd", "mblaze", "device").  Empty = the
    /// registry default (the QFA_BACKEND environment variable when it
    /// names a registered backend, else cpu-simd — so the default engine
    /// stays bit-identical to the pre-backend compiled path).  An unknown
    /// name here throws from the constructor: explicit config is a
    /// contract, only the env hint degrades silently.
    std::string backend;
    /// Per-shard placement override: element i names shard i's backend,
    /// "" falls through to `backend` above.  Shorter vectors pad with ""
    /// (so {"mblaze"} puts only shard 0 on the soft core).  A request is
    /// always scored by its HOME shard's backend — work stealing moves
    /// *where* a job runs, never which backend scores it.
    std::vector<std::string> shard_backends;
    /// Runtime-failure handling: retry/backoff, per-(shard, backend)
    /// circuit breaker, exact-fallback failover.  See FaultToleranceConfig.
    FaultToleranceConfig fault;
};

/// Monotone counters (mirrors ManagerStats' role for the serve layer).
///
/// Snapshot coherence: stats() reads every completion-side counter
/// (`served`, `expired`, `shed`) before `submitted`, with release/acquire
/// ordering on the completion side, so any snapshot satisfies
/// `served + expired + shed <= submitted` — a caller can treat
/// `submitted - served - expired - shed` as the non-negative in-flight
/// backlog.  Counters are otherwise independently monotone; two snapshots
/// taken around a mutation may disagree on how far each counter advanced.
struct EngineStats {
    /// Per-tenant outcome slice (admission-path traffic carries a TenantId;
    /// the blocking closed-loop paths land on tenant 0 only when they pass
    /// JobClasses).
    struct TenantStats {
        std::uint64_t admitted = 0;
        std::uint64_t rejected = 0;
        std::uint64_t expired = 0;
        std::uint64_t shed = 0;
        std::uint64_t served = 0;
    };

    /// Per-backend outcome slice.  `served` counts retrievals this backend
    /// actually scored (stolen jobs included — attribution follows the
    /// scoring backend, not the executing worker); `fallbacks` counts
    /// retrievals ASSIGNED to this backend that it declined via
    /// can_serve(), each of which was then scored — and counted served —
    /// by cpu-simd.  Declines are never silent: every fallback shows here.
    ///
    /// The fault-tolerance slice (FaultToleranceConfig) keys on the
    /// ASSIGNED backend too: `retries` counts re-submissions after a
    /// retryable failure, `failovers` counts requests rescored by cpu-simd
    /// after this backend failed (runtime failures; capability declines
    /// are `fallbacks`) or while its breaker was open, `breaker_opens` /
    /// `breaker_closes` / `probes` expose every breaker transition, and
    /// `integrity_rebuilds` counts checksum mismatches detected before
    /// scoring (each forced an image rebuild — corrupted images are never
    /// served).  No silent degradation: a fault-free run shows zeros.
    struct BackendStats {
        std::uint64_t served = 0;
        std::uint64_t fallbacks = 0;
        std::uint64_t retries = 0;
        std::uint64_t failovers = 0;
        std::uint64_t breaker_opens = 0;
        std::uint64_t breaker_closes = 0;
        std::uint64_t probes = 0;
        std::uint64_t integrity_rebuilds = 0;
    };

    std::uint64_t submitted = 0;        ///< jobs accepted into a queue
    std::uint64_t served = 0;           ///< jobs completed by workers
                                        ///< (retrievals and executes); expired
                                        ///< and shed jobs are NOT served
    std::uint64_t executed = 0;         ///< execute()/execute_batch closures
                                        ///< completed (subset of `served`)
    std::uint64_t retains = 0;          ///< successful retain() calls
    std::uint64_t published_epochs = 0; ///< generations published (every one
                                        ///< built by incremental patching)
    /// COW sharing telemetry (ROADMAP): of the type plans carried by all
    /// published epochs, how many were pointer-aliased from the
    /// predecessor epoch rather than spliced/cloned.  The sharing ratio
    /// `cow_plans_shared / cow_plans_published` is the per-epoch
    /// publication cost long-running serving wants to watch — near 1 means
    /// epochs cost a splice plus pointer copies, near 0 means widened
    /// bounds keep forcing clones.
    std::uint64_t cow_plans_shared = 0;     ///< plans aliased across publishes
    std::uint64_t cow_plans_published = 0;  ///< plans carried by publishes
    // Overload pipeline (admission → expiry → shed; serve/admission.hpp):
    std::uint64_t admitted = 0;  ///< accepted by try_submit/submit_until
                                 ///< (subset of `submitted`)
    std::uint64_t rejected = 0;  ///< typed admission refusals — these never
                                 ///< entered a queue and are NOT in `submitted`
    std::uint64_t expired = 0;   ///< dropped on dequeue past their deadline
    std::uint64_t shed = 0;      ///< evicted from a backlog by the shedder
    // Steal telemetry (StealConfig).  `stolen` counts jobs served by a
    // worker other than their home shard's; `shard_stolen[s]` attributes
    // each steal to the HOME (victim) shard s it was taken from — keyed by
    // shard_of, which is stable across runs and engine instances of equal
    // shard count, so victim profiles are comparable across processes.
    // The same-/cross-node split shows whether NUMA-preferring victim
    // order is holding (all-same-node on a single-node host); in a
    // mid-flight snapshot `stolen_same_node + stolen_cross_node` may LAG
    // `stolen` (the per-shard counter is bumped first and read last) but
    // never exceeds it — the three agree exactly once steals quiesce.
    // Stolen jobs
    // participate in the usual coherence: a stolen job is counted in
    // `served` (and `shard_served`) by its EXECUTING worker, and both
    // stolen counters are read acquire before `submitted`, so
    // stolen <= served <= submitted holds in any snapshot.
    std::uint64_t stolen = 0;            ///< jobs served off their home shard
    std::uint64_t stolen_same_node = 0;  ///< thief and victim on one node
    std::uint64_t stolen_cross_node = 0; ///< steal crossed the interconnect
    std::vector<std::uint64_t> shard_stolen;  ///< steals per HOME (victim) shard
    std::vector<std::size_t> shard_node;      ///< NUMA node per shard (all 0
                                              ///< when placement is off)
    std::vector<std::uint64_t> shard_served;  ///< per-shard completion counts
    std::map<TenantId, TenantStats> tenants;  ///< per-tenant outcome slices
    /// Per-backend outcome slices, one entry per registered backend (all
    /// present even when zero, so dashboards see stable keys).  Counter
    /// coherence: served/fallback counts are bumped release before the
    /// job's promise resolves and read acquire before `submitted`, so
    /// Σ backends.served <= submitted in any snapshot.
    std::map<std::string, BackendStats> backends;
};

class Engine {
public:
    /// Spawns the shard workers over an initial catalogue; design-global
    /// bounds are derived from the tree (BoundsTable::from_case_base), and
    /// only widen afterwards as retain() covers new values.
    explicit Engine(cbr::CaseBase initial, EngineConfig config = {});

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /// Joins the workers after draining accepted jobs.
    ~Engine();

    [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }

    /// Deterministic mix (util::mix64, the SplitMix64 finalizer) applied
    /// to a TypeId before the shard modulo.  Raw ids are often allocated
    /// on a stride — a catalogue numbering its types 0, S, 2S, ... with S
    /// a multiple of the shard count would collapse onto one worker under
    /// a plain modulo; the finalizer's avalanche spreads any arithmetic
    /// progression evenly.  Pure function of the id: the mapping is stable
    /// across runs, processes and engine instances of equal shard count.
    [[nodiscard]] static constexpr std::uint64_t mix_type_id(std::uint64_t id) noexcept {
        return util::mix64(id);
    }

    /// The shard that owns a function type's plan: mix_type_id(id) modulo
    /// the shard count.
    [[nodiscard]] std::size_t shard_of(cbr::TypeId type) const noexcept {
        return static_cast<std::size_t>(mix_type_id(type.value()) % shards_.size());
    }

    /// Enqueues one retrieval on the owning shard.  The future resolves to
    /// the same result the single-threaded compiled path produces at the
    /// pinned epoch; it carries an exception if the engine is shut down
    /// before the job runs.
    /// The allocation layer's batch front-end
    /// (AllocationManager::allocate_batch) fans its AllocRequests out
    /// through this, mapping each request's QoS knobs (n_best width, §3
    /// threshold) onto the options — the serve layer itself stays below
    /// alloc and knows nothing about grants.
    [[nodiscard]] std::future<cbr::RetrievalResult> submit(cbr::Request request,
                                                           cbr::RetrievalOptions options = {});

    /// Bulk enqueue: groups the requests by owning shard and feeds each
    /// shard's jobs with ONE queue lock acquisition per shard per batch
    /// (BoundedMpmcQueue::push_all) instead of one per job.  futures[i]
    /// belongs to requests[i] and resolves exactly as submit(requests[i],
    /// options[i]) would — grouping changes how jobs enter the queues,
    /// never what a shard computes.  `options` must be the same size as
    /// `requests` (per-request QoS knobs, the alloc batch front-end) or a
    /// single element broadcast to every request.  Jobs refused by a
    /// closed queue resolve to the shut-down exception.
    [[nodiscard]] std::vector<std::future<cbr::RetrievalResult>> submit_batch(
        std::span<const cbr::Request> requests,
        std::span<const cbr::RetrievalOptions> options);

    /// submit_batch with one options set for the whole batch.
    [[nodiscard]] std::vector<std::future<cbr::RetrievalResult>> submit_batch(
        std::span<const cbr::Request> requests, const cbr::RetrievalOptions& options = {}) {
        return submit_batch(requests, std::span<const cbr::RetrievalOptions>(&options, 1));
    }

    /// Classed bulk enqueue: submit_batch plus per-request SLO classes
    /// (tenant, priority, deadline, completion stamp).  Still the blocking
    /// closed-loop path — producers wait at capacity — but workers now
    /// honor deadlines: a request infeasible already at submission resolves
    /// immediately with DeadlineExceeded (counted rejected), and one whose
    /// deadline passes while queued resolves with DeadlineExceeded at
    /// dequeue (counted expired).  `classes` is per-request, one broadcast
    /// element, or empty (= unclassed, exactly the 2-arg overload).
    [[nodiscard]] std::vector<std::future<cbr::RetrievalResult>> submit_batch(
        std::span<const cbr::Request> requests,
        std::span<const cbr::RetrievalOptions> options, std::span<const JobClass> classes);

    /// Non-blocking admission (the open-loop path): never waits at
    /// capacity.  Refusals are typed — queue_full (backlog or inflight
    /// bound hit, after shedding under AdmissionPolicy::shed_lowest),
    /// shutting_down, deadline_infeasible (cls.deadline <= now) — and a
    /// refused result carries NO future: the status is the whole answer and
    /// the request never entered a queue.  Admitted requests resolve like
    /// submit()'s, or with DeadlineExceeded / LoadShed when the overload
    /// pipeline drops them later (never silently).
    [[nodiscard]] AdmissionResult try_submit(cbr::Request request,
                                             cbr::RetrievalOptions options = {},
                                             JobClass cls = {});

    /// try_submit with patience: blocks on a full backlog, but only until
    /// `admit_by`.  Still full then → queue_full.  All counters move once,
    /// at the final outcome, regardless of how many internal retries the
    /// wait took.
    [[nodiscard]] AdmissionResult submit_until(cbr::Request request,
                                               cbr::RetrievalOptions options,
                                               std::chrono::steady_clock::time_point admit_by,
                                               JobClass cls = {});

    /// One type-erased closure bound for one shard (execute_batch input).
    struct ShardTask {
        std::size_t shard = 0;      ///< must be < shard_count()
        std::function<void()> fn;   ///< runs on that shard's worker thread
    };

    /// Run-on-shard primitive: enqueues a type-erased closure on shard
    /// `shard`'s queue, FIFO-interleaved with that shard's retrieval jobs,
    /// and returns a future that resolves when the closure has run (or
    /// carries the closure's exception, or the shut-down error when the
    /// engine stopped first).  The closure runs on the worker thread with
    /// no lock held — it must synchronize access to shared state itself
    /// and must not block on work queued behind it on the same shard
    /// (deadlock: one worker drains each queue).  Layers above use this to
    /// fan read-mostly stages across the cores — see the header comment.
    [[nodiscard]] std::future<void> execute(std::size_t shard, std::function<void()> fn);

    /// Bulk run-on-shard: groups the tasks by target shard and feeds each
    /// shard's queue with one push_all per batch, exactly as submit_batch
    /// does for retrievals.  futures[i] belongs to tasks[i]; tasks bound
    /// for the same shard run in input order.  Tasks refused by a closed
    /// queue resolve to the shut-down exception.
    [[nodiscard]] std::vector<std::future<void>> execute_batch(std::span<ShardTask> tasks);

    /// Blocking batch helper: submit_batch (bulk per-shard enqueue), waits
    /// for all, and returns results in input order — bit-identical to
    /// Retriever::retrieve_batch on the current generation.
    [[nodiscard]] std::vector<cbr::RetrievalResult> retrieve_all(
        std::span<const cbr::Request> requests, const cbr::RetrievalOptions& options = {});

    /// Retain (§5 self-learning): novelty-checks and inserts the variant,
    /// then publishes a new epoch whose plans were *patched*, not
    /// recompiled (one row splice into the type's columns).  Readers keep
    /// scoring the old epoch until their in-flight request completes.
    cbr::RetainVerdict retain(cbr::TypeId type, cbr::Implementation impl,
                              double novelty_threshold = 0.98);

    /// Adds an (empty) function type and publishes the successor epoch.
    bool add_type(cbr::TypeId id, std::string name);

    /// Removes one variant (the revise step's primitive) and publishes the
    /// successor epoch; the changed type's plan is recompiled (removal has
    /// no splice fast path), everything else is patched.
    bool remove_implementation(cbr::TypeId type, cbr::ImplId impl);

    /// Pins the current generation — e.g. to rebind an AllocationManager to
    /// the served catalogue without recompiling (the generation already
    /// carries compiled plans).  Safe to hold across later publishes.
    [[nodiscard]] GenerationPtr current() const noexcept { return store_.load(); }

    /// Epoch of the current generation (== the master case base's mutation
    /// counter).
    [[nodiscard]] std::uint64_t epoch() const noexcept { return store_.load()->epoch; }

    /// Retain/revise bookkeeping of the master case base.
    [[nodiscard]] cbr::MaintenanceStats maintenance_stats() const;

    [[nodiscard]] EngineStats stats() const;

    /// Closes the queues, drains accepted jobs, joins workers.  Idempotent;
    /// submissions after shutdown resolve to a broken-engine exception.
    void shutdown();

private:
    /// Per-tenant atomic outcome counters, materialized on first use and
    /// owned by tenants_ (stable addresses: jobs carry the raw pointer so
    /// workers and the shedder never touch the map or its mutex).
    /// shed_debt is the fairness ledger: the shedder picks its victim from
    /// the tenant shed from LEAST so far, spreading eviction across tenants
    /// instead of starving whichever one is easiest to hit.
    struct TenantCounters {
        std::atomic<std::uint64_t> admitted{0};
        std::atomic<std::uint64_t> rejected{0};
        std::atomic<std::uint64_t> expired{0};
        std::atomic<std::uint64_t> shed{0};
        std::atomic<std::uint64_t> served{0};
        std::atomic<std::uint64_t> shed_debt{0};
    };

    /// Per-backend atomic outcome counters, one per registered backend,
    /// materialized in the constructor (stable addresses: shard-backend
    /// slots carry raw pointers so the hot path never touches the map).
    struct BackendCounters {
        std::atomic<std::uint64_t> served{0};
        std::atomic<std::uint64_t> fallbacks{0};
        std::atomic<std::uint64_t> retries{0};
        std::atomic<std::uint64_t> failovers{0};
        std::atomic<std::uint64_t> breaker_opens{0};
        std::atomic<std::uint64_t> breaker_closes{0};
        std::atomic<std::uint64_t> probes{0};
        std::atomic<std::uint64_t> integrity_rebuilds{0};
    };

    /// One (shard, backend) health state machine: closed → open →
    /// half-open → closed (see FaultToleranceConfig).  Mutex-guarded —
    /// thieves serve jobs whose HOME shard they don't own, so two workers
    /// can touch one shard's breaker concurrently; the healthy path pays
    /// one uncontended lock per non-fallback dispatch.
    struct Breaker {
        enum class State : std::uint8_t { closed, open, half_open };
        std::mutex mutex;
        State state = State::closed;
        std::size_t failures = 0;       ///< consecutive attempt failures (closed)
        std::size_t cooldown_left = 0;  ///< fallback-routed requests until half-open
        std::size_t probe_streak = 0;   ///< consecutive probe successes (half-open)
        bool probe_inflight = false;    ///< one real-request probe at a time
    };

    /// What the breaker tells the dispatcher to do with one request.
    enum class BreakerDecision : std::uint8_t {
        serve,     ///< closed: score on the assigned backend
        probe,     ///< half-open: score on the assigned backend as THE probe
        fallback,  ///< open (or a probe is already in flight): straight to cpu-simd
    };

    /// One shard's resolved backend assignment (constructor-final; workers
    /// read it without synchronization).  `breaker` is non-null exactly
    /// when the assignment can fail over (assigned != cpu-simd) and the
    /// breaker is enabled (fault.breaker_threshold > 0).
    struct ShardBackend {
        const backend::RetrievalBackend* assigned = nullptr;
        BackendCounters* counters = nullptr;
        std::unique_ptr<Breaker> breaker;
    };

    /// One worker's per-backend scratch set, grown lazily as backends
    /// score on this worker (a thief may serve a shard whose backend it
    /// has not met yet).  Linear scan: a worker ever meets at most the
    /// registered-backend count of entries.
    struct WorkerScratch {
        std::vector<std::pair<const backend::RetrievalBackend*,
                              std::unique_ptr<backend::BackendScratch>>>
            entries;

        backend::BackendScratch& for_backend(const backend::RetrievalBackend& be) {
            for (auto& [owner, scratch] : entries) {
                if (owner == &be) {
                    return *scratch;
                }
            }
            entries.emplace_back(&be, be.make_scratch());
            return *entries.back().second;
        }
    };

    /// A queued n-best retrieval (the original job kind).
    struct RetrieveJob {
        cbr::Request request;
        cbr::RetrievalOptions options;
        std::promise<cbr::RetrievalResult> promise;
        JobClass cls{};                    ///< tenant / priority / deadline / stamp
        TenantCounters* tenant = nullptr;  ///< null = unclassed (never shed)
        bool counted_inflight = false;     ///< admitted via try_submit/submit_until
        std::chrono::steady_clock::time_point enqueued_at{};  ///< latency watermark input
    };

    /// A queued type-erased closure (the run-on-shard job kind).  The
    /// promise<void> resolves after fn() returns, or carries fn's
    /// exception.
    struct ExecuteJob {
        std::function<void()> fn;
        std::promise<void> promise;
    };

    /// One shard serves both kinds from one FIFO, so an execute enqueued
    /// after a retrieval on the same shard observes that retrieval's
    /// completion (and vice versa).
    using Job = std::variant<RetrieveJob, ExecuteJob>;

    struct Shard {
        Shard(std::size_t capacity, BoundedMpmcQueue<Job>::DeadlineFn deadline_of)
            : queue(capacity, std::move(deadline_of)) {}
        BoundedMpmcQueue<Job> queue;
        std::thread worker;
        std::atomic<std::uint64_t> served{0};  ///< completions BY this worker
        std::atomic<std::uint64_t> stolen{0};  ///< jobs stolen FROM this queue
    };

    void worker_loop(std::size_t self);

    /// Serves one dequeued job on the calling worker (`self` is its shard,
    /// for completion attribution): expiry check, per-job epoch pin,
    /// backend dispatch / closure run, promise resolution, counters.
    /// Identical whether the job came from self's own queue or was stolen
    /// — the epoch is pinned HERE, at service time, and the backend is the
    /// HOME shard's (shard_of the request's type, not `self`), so a stolen
    /// retrieval resolves against the generation current at its dequeue
    /// and through the very backend home execution would have used.
    /// The dispatch site is fully guarded: ANY exception out of a backend
    /// (or the dispatch ladder itself) resolves the job's future instead
    /// of propagating into — and killing — the worker thread.
    void serve_job(Shard& self, Job job, WorkerScratch& scratch);

    /// The fault-tolerant dispatch ladder for one retrieval: breaker
    /// admission, guarded can_serve (a decline = counted fallback; a throw
    /// = runtime failure), bounded retry with backoff for retryable
    /// failures, then per-request failover to cpu-simd.  `counters` is set
    /// to the backend slice the result should be attributed to.  Throws
    /// only for failures no fallback can absorb (engine shutdown mid-poll;
    /// the exact fallback itself failing).
    cbr::RetrievalResult dispatch_retrieval(RetrieveJob& job,
                                            const backend::ShardContext& ctx,
                                            WorkerScratch& scratch,
                                            BackendCounters*& counters);

    /// One submit/poll round against `be` with the configured poll budget.
    /// A ticket still pending at the budget throws BackendError(timeout);
    /// a pending ticket also checks stopped_ between polls, so engine
    /// shutdown interrupts a stuck ticket (eager backends complete on the
    /// first poll and are never interrupted — accepted jobs still drain).
    cbr::RetrievalResult score_async(const backend::RetrievalBackend& be,
                                     const backend::ShardContext& ctx,
                                     const RetrieveJob& job,
                                     backend::BackendScratch& be_scratch) const;

    /// Breaker admission for one request against its home assignment.
    BreakerDecision breaker_admit(ShardBackend& home);

    /// Books one attempt outcome into the breaker state machine.
    /// `probing` marks the half-open real-request probe.
    void breaker_on_success(ShardBackend& home, bool probing);
    void breaker_on_failure(ShardBackend& home, bool probing);

    /// Releases the probe slot with no verdict (the probe request never
    /// reached scoring: a capability decline, or shutdown).
    void breaker_probe_abort(ShardBackend& home);

    /// One steal attempt by worker `thief`: scans sibling queues (same
    /// NUMA node first, then cross-node; deepest backlog first within each
    /// group), skips victims below steal_.min_victim_depth, and extracts
    /// exactly the job the victim's pop() would serve next — declining
    /// (and moving to the next victim) when that job is an execute
    /// closure.  Books the steal telemetry on success.
    std::optional<Job> try_steal(std::size_t thief);

    /// Index of the job `queue`'s own pop() would serve next, or >= size
    /// when it is an ExecuteJob / the queue is empty — the extract()
    /// selector of the steal path (mirrors the queue's FIFO/EDF choice).
    std::size_t steal_slot(const std::deque<Job>& items) const;

    /// Applies NUMA placement for `plan`'s payload columns: prefers the
    /// node of the shard that owns the plan's type.  No-op unless
    /// placement is live (config.numa on a supported build/host).
    void bind_plan_columns(const cbr::TypePlan& plan) const;

    /// Feeds shard-grouped jobs with one push_all per shard; jobs refused
    /// by a closed queue resolve their promises to the shut-down error.
    void enqueue_grouped(std::vector<std::vector<Job>>& grouped);

    /// Counters for `tenant`, materializing them on first use.
    TenantCounters& tenant_counters(TenantId tenant);

    /// One admission attempt.  Counts no rejection and does not consume
    /// `request` (the job copies it) so submit_until can retry; the public
    /// entry points count the final outcome exactly once.
    AdmissionResult try_admit(const cbr::Request& request,
                              const cbr::RetrievalOptions& options, const JobClass& cls);

    /// Evicts the lowest-priority queued retrieval strictly below
    /// `incoming_priority` from `shard` (ties: least-shed tenant, then
    /// oldest).  The victim's future resolves with LoadShed.  False when no
    /// sheddable job exists.
    bool shed_one(Shard& shard, std::uint8_t incoming_priority);

    /// Books one refusal (global + tenant) and wraps it as a result.
    AdmissionResult count_rejected(AdmissionStatus status, const JobClass& cls);

    /// Builds and publishes the successor generation for a mutation of
    /// `changed`.  Caller holds writer_mutex_.
    void publish_locked(cbr::TypeId changed);

    /// Resolves config.backend / config.shard_backends against the
    /// registry into shard_backend_ and the counter map (constructor
    /// only; throws std::invalid_argument on an unknown explicit name).
    void resolve_backends(const EngineConfig& config);

    cbr::DynamicCaseBase master_;   ///< writer-side truth; guarded by writer_mutex_
    PlanStore store_;               ///< reader-side publication point
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<ShardBackend> shard_backend_;  ///< per-shard assignment (final)
    const backend::RetrievalBackend* fallback_backend_ = nullptr;  ///< cpu-simd
    BackendCounters* fallback_counters_ = nullptr;
    /// One counter slot per registered backend (stable addresses).
    std::map<std::string, std::unique_ptr<BackendCounters>, std::less<>> backend_counters_;
    AdmissionConfig admission_;
    StealConfig steal_;
    FaultToleranceConfig fault_;
    bool edf_ = false;  ///< steal_slot mirrors the queue's EDF choice
    bool numa_live_ = false;            ///< config.numa && util::numa::supported()
    std::vector<std::size_t> shard_node_;  ///< NUMA node per shard (all 0 when off)
    std::atomic<std::uint64_t> stolen_same_node_{0};
    std::atomic<std::uint64_t> stolen_cross_node_{0};
    mutable std::mutex writer_mutex_;
    std::mutex shutdown_mutex_;
    mutable std::mutex tenant_mutex_;  ///< guards tenants_ (the map, not the counters)
    std::map<TenantId, std::unique_ptr<TenantCounters>> tenants_;
    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> executed_{0};
    std::atomic<std::uint64_t> admitted_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> expired_{0};
    std::atomic<std::uint64_t> shed_{0};
    std::atomic<std::uint64_t> inflight_{0};  ///< admission-path jobs unresolved
    std::atomic<std::uint64_t> retains_{0};
    std::atomic<std::uint64_t> published_epochs_{0};
    std::atomic<std::uint64_t> cow_plans_shared_{0};
    std::atomic<std::uint64_t> cow_plans_published_{0};
    std::atomic<bool> stopped_{false};
};

}  // namespace qfa::serve
