#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <stdexcept>
#include <utility>

#include "util/contracts.hpp"
#include "util/numa.hpp"

namespace qfa::serve {

namespace {

/// The exception a submission resolves to when the engine stopped first.
std::exception_ptr engine_stopped() {
    return std::make_exception_ptr(std::runtime_error("serve engine is shut down"));
}

/// Thrown by score_async when shutdown lands while a ticket is pending —
/// derives from runtime_error with the same message engine_stopped()
/// carries, so the job's future reports "shut down" whether the engine
/// stopped before the job ran or mid-poll.
struct ShutdownInterrupt : std::runtime_error {
    ShutdownInterrupt() : std::runtime_error("serve engine is shut down") {}
};

}  // namespace

Engine::Engine(cbr::CaseBase initial, EngineConfig config)
    : master_(std::move(initial)),
      store_(make_generation(master_.epoch(), master_.snapshot(), master_.bounds())),
      admission_(config.admission),
      steal_(config.steal),
      fault_(config.fault) {
    QFA_EXPECTS(config.shard_count >= 1, "engine needs at least one shard");
    QFA_EXPECTS(config.queue_capacity >= 1, "engine needs a positive queue capacity");
    QFA_EXPECTS(steal_.min_victim_depth >= 1, "a steal victim needs at least one job");
    // NUMA placement is advisory end to end: `numa_live_` only decides
    // whether the shim is asked, never what any retrieval computes.  The
    // shard→node map exists (all zeros) even when placement is off so the
    // steal path and stats() never branch on support.
    numa_live_ = config.numa && util::numa::supported();
    const std::size_t node_count = numa_live_ ? util::numa::node_count() : 1;
    shard_node_.resize(config.shard_count, 0);
    for (std::size_t i = 0; i < config.shard_count; ++i) {
        shard_node_[i] = i % node_count;
    }
    // EDF mode hands the queue a deadline extractor; execute closures have
    // no deadline and so always rank behind deadlined retrievals.
    edf_ = config.edf;
    BoundedMpmcQueue<Job>::DeadlineFn deadline_of;
    if (config.edf) {
        deadline_of = [](const Job& job) -> std::optional<std::chrono::steady_clock::time_point> {
            const RetrieveJob* retrieval = std::get_if<RetrieveJob>(&job);
            return retrieval == nullptr ? std::nullopt : retrieval->cls.deadline;
        };
    }
    shards_.reserve(config.shard_count);
    for (std::size_t i = 0; i < config.shard_count; ++i) {
        shards_.push_back(std::make_unique<Shard>(config.queue_capacity, deadline_of));
    }
    // Place the initial catalogue's plan columns before any worker scans
    // them (shard_node_ is final here, shards_ sizes shard_of's modulo).
    if (numa_live_) {
        for (const auto& plan : store_.load()->compiled.plans()) {
            bind_plan_columns(*plan);
        }
    }
    // Backend placement is resolved before any worker starts: workers
    // read shard_backend_ unsynchronized, so it must be final here.
    resolve_backends(config);
    // Workers start only after every shard exists: shard_of indexes the
    // final vector, and the steal path scans all of them.
    for (std::size_t i = 0; i < config.shard_count; ++i) {
        shards_[i]->worker = std::thread([this, i] { worker_loop(i); });
    }
}

Engine::~Engine() { shutdown(); }

void Engine::resolve_backends(const EngineConfig& config) {
    backend::BackendRegistry& registry = backend::registry();
    // One counter slot per registered backend, zero or not — stable keys
    // for dashboards, stable addresses for the hot path.
    for (const backend::RetrievalBackend* be : registry.enumerate()) {
        backend_counters_.emplace(std::string(be->name()),
                                  std::make_unique<BackendCounters>());
    }
    fallback_backend_ = registry.find("cpu-simd");
    QFA_ASSERT(fallback_backend_ != nullptr, "the cpu-simd fallback must be registered");
    fallback_counters_ = backend_counters_.find("cpu-simd")->second.get();
    // Explicit config names are contracts (throw on a typo); only the
    // QFA_BACKEND env hint inside default_backend() degrades to cpu-simd.
    const backend::RetrievalBackend* global =
        config.backend.empty() ? registry.default_backend()
                               : registry.find(config.backend);
    if (global == nullptr) {
        throw std::invalid_argument("EngineConfig::backend names no registered backend: " +
                                    config.backend);
    }
    shard_backend_.resize(config.shard_count);
    for (std::size_t i = 0; i < config.shard_count; ++i) {
        const std::string* name =
            i < config.shard_backends.size() && !config.shard_backends[i].empty()
                ? &config.shard_backends[i]
                : nullptr;
        const backend::RetrievalBackend* assigned =
            name == nullptr ? global : registry.find(*name);
        if (assigned == nullptr) {
            throw std::invalid_argument(
                "EngineConfig::shard_backends names no registered backend: " + *name);
        }
        shard_backend_[i].assigned = assigned;
        shard_backend_[i].counters =
            backend_counters_.find(assigned->name())->second.get();
        // A breaker exists exactly where failover exists: fallback-assigned
        // shards score the exact path directly (nothing to quarantine), and
        // threshold 0 disables the state machine outright.
        if (assigned != fallback_backend_ && fault_.breaker_threshold > 0) {
            shard_backend_[i].breaker = std::make_unique<Breaker>();
        }
    }
}

void Engine::worker_loop(std::size_t self) {
    Shard& shard = *shards_[self];
    if (numa_live_) {
        // Advisory affinity: a refused pin (cpuset restrictions, exotic
        // topologies) costs locality, never correctness.
        (void)util::numa::pin_thread_to_node(shard_node_[self]);
    }
    // One scratch set per worker, one entry per backend this worker ever
    // scores through (cpu-simd's steady state allocates nothing beyond
    // returned matches; the image backends cache per-type artifacts
    // here).  The generation is pinned per job and released before
    // blocking on an empty queue, so an idle shard never keeps a retired
    // epoch (tree + plans) alive.
    WorkerScratch scratch;
    if (!steal_.enabled) {
        // The classic single-consumer drain: block on the own queue,
        // exit once it is closed and empty.
        while (std::optional<Job> job = shard.queue.pop()) {
            serve_job(shard, std::move(*job), scratch);
        }
        return;
    }
    // Steal mode: never block indefinitely on the own queue — alternate
    // own work, victim scans, and bounded parks.  Exit condition matches
    // pop()'s: the own queue is closed AND drained (each worker drains its
    // own backlog; shutdown() closes every queue before joining).
    for (;;) {
        std::optional<Job> job = shard.queue.try_pop();
        if (job.has_value()) {
            serve_job(shard, std::move(*job), scratch);
            // Shallow-backlog assist: with a watermark set, a worker whose
            // remaining depth is below it lends one service to the deepest
            // qualifying sibling before returning to its own queue.
            if (steal_.own_watermark == 0 ||
                shard.queue.size() >= steal_.own_watermark) {
                continue;
            }
            if (std::optional<Job> loot = try_steal(self)) {
                serve_job(shard, std::move(*loot), scratch);
            }
            continue;
        }
        if (std::optional<Job> loot = try_steal(self)) {
            serve_job(shard, std::move(*loot), scratch);
            continue;
        }
        // Dry everywhere: park on the own queue for one scan period.  A
        // home push wakes this immediately; a sibling's backlog is caught
        // by the next scan after the park expires.
        job = shard.queue.pop_until(std::chrono::steady_clock::now() + steal_.park);
        if (job.has_value()) {
            serve_job(shard, std::move(*job), scratch);
            continue;
        }
        if (shard.queue.closed() && shard.queue.size() == 0) {
            return;
        }
    }
}

void Engine::serve_job(Shard& self, Job job, WorkerScratch& scratch) {
    // Count before fulfilling the promise (release, matching stats()'s
    // acquire reads): anyone who has observed the result must also
    // observe it in the stats, and a stats() snapshot that includes
    // this completion also includes its submission.  `self` is the
    // EXECUTING worker's shard — for a stolen job that is the thief, so
    // shard_served keeps meaning "completions by this worker".
    if (RetrieveJob* retrieval = std::get_if<RetrieveJob>(&job)) {
        // Drop-on-dequeue expiry: a deadline that *passed* while the job
        // sat queued is a DeadlineExceeded resolution, never a silent
        // drop and never a wasted retrieval.  The boundary is
        // expired_on_dequeue's (d < now serves; d == now still serves).
        if (retrieval->cls.deadline.has_value()) {
            const auto now = std::chrono::steady_clock::now();
            if (expired_on_dequeue(*retrieval->cls.deadline, now)) {
                expired_.fetch_add(1, std::memory_order_release);
                if (retrieval->tenant != nullptr) {
                    retrieval->tenant->expired.fetch_add(1, std::memory_order_relaxed);
                }
                if (retrieval->counted_inflight) {
                    inflight_.fetch_sub(1, std::memory_order_relaxed);
                }
                if (retrieval->cls.completed_at != nullptr) {
                    *retrieval->cls.completed_at = now;
                }
                retrieval->promise.set_exception(
                    std::make_exception_ptr(DeadlineExceeded{}));
                return;
            }
        }
        // The epoch pin.  For a stolen job this runs on the thief AT ITS
        // DEQUEUE — the retrieval resolves against the generation current
        // when the job left the victim's queue, exactly the generation the
        // victim's own pop-then-pin would have used at that instant, so
        // stolen execution is bit-identical to home execution by
        // construction (sharding — and stealing — only decide *where* a
        // plan is scored, never *how*).
        const GenerationPtr pinned = store_.load();
        const backend::ShardContext ctx{&pinned->case_base, &pinned->bounds,
                                        &pinned->compiled, pinned->epoch};
        self.served.fetch_add(1, std::memory_order_release);
        if (retrieval->tenant != nullptr) {
            retrieval->tenant->served.fetch_add(1, std::memory_order_relaxed);
        }
        // Fully guarded dispatch: whatever a backend (or the ladder
        // itself) throws resolves THIS job's future — a failure costs one
        // request its result, never a worker thread its life.  The
        // per-backend `served` slice is bumped release before the promise
        // resolves (matching stats()'s acquire), attributed to the
        // backend the dispatch last scored through.
        BackendCounters* counters = fallback_counters_;
        try {
            cbr::RetrievalResult result =
                dispatch_retrieval(*retrieval, ctx, scratch, counters);
            counters->served.fetch_add(1, std::memory_order_release);
            // Stamp before set_value: the future's happens-before makes
            // the stamp readable after get()/wait() returns.
            if (retrieval->cls.completed_at != nullptr) {
                *retrieval->cls.completed_at = std::chrono::steady_clock::now();
            }
            retrieval->promise.set_value(std::move(result));
        } catch (...) {
            counters->served.fetch_add(1, std::memory_order_release);
            if (retrieval->cls.completed_at != nullptr) {
                *retrieval->cls.completed_at = std::chrono::steady_clock::now();
            }
            retrieval->promise.set_exception(std::current_exception());
        }
        if (retrieval->counted_inflight) {
            inflight_.fetch_sub(1, std::memory_order_relaxed);
        }
    } else {
        ExecuteJob& exec = std::get<ExecuteJob>(job);
        self.served.fetch_add(1, std::memory_order_release);
        executed_.fetch_add(1, std::memory_order_release);
        try {
            exec.fn();
            exec.promise.set_value();
        } catch (...) {
            exec.promise.set_exception(std::current_exception());
        }
    }
}

cbr::RetrievalResult Engine::dispatch_retrieval(RetrieveJob& job,
                                                const backend::ShardContext& ctx,
                                                WorkerScratch& scratch,
                                                BackendCounters*& counters) {
    // Backend selection follows the HOME shard (shard_of the request's
    // type), not the executing worker: a steal moves where a job runs,
    // never which backend scores it, so placement stays a pure function
    // of the type.
    ShardBackend& home = shard_backend_[shard_of(job.request.type())];
    const backend::RetrievalBackend* be = home.assigned;
    counters = home.counters;
    // Fallback-assigned shards score the exact path directly: no breaker,
    // no retry, nothing to fail over to.
    if (be == fallback_backend_) {
        return score_async(*be, ctx, job, scratch.for_backend(*be));
    }
    bool probing = false;
    if (home.breaker != nullptr) {
        switch (breaker_admit(home)) {
            case BreakerDecision::fallback:
                // Quarantined: straight to cpu-simd, counted as a failover
                // against the assigned backend — an open breaker is loud.
                home.counters->failovers.fetch_add(1, std::memory_order_release);
                counters = fallback_counters_;
                return score_async(*fallback_backend_, ctx, job,
                                   scratch.for_backend(*fallback_backend_));
            case BreakerDecision::probe:
                probing = true;
                home.counters->probes.fetch_add(1, std::memory_order_release);
                break;
            case BreakerDecision::serve:
                break;
        }
    }
    backend::BackendScratch* be_scratch = &scratch.for_backend(*be);
    // Guarded capability check (pre-tentpole this call was naked in the
    // worker loop): a FALSE is a decline — the counted-fallback path, not
    // a health signal, so a probing breaker releases its slot with no
    // verdict — while a THROW is a runtime failure during the check and
    // rides the failure ladder below.
    bool decline = false;
    bool check_failed = false;
    try {
        decline = !be->can_serve(ctx, job.request, job.options, be_scratch);
    } catch (...) {
        check_failed = true;
    }
    if (decline) {
        if (probing) {
            breaker_probe_abort(home);
        }
        home.counters->fallbacks.fetch_add(1, std::memory_order_release);
        counters = fallback_counters_;
        return score_async(*fallback_backend_, ctx, job,
                           scratch.for_backend(*fallback_backend_));
    }
    if (!check_failed) {
        // Attempt ladder: first try plus up to max_retries re-submissions
        // for retryable failures.  A probe never retries — its verdict is
        // the first attempt's, and a failed probe must reopen promptly.
        const std::size_t attempts = 1 + (probing ? 0 : fault_.max_retries);
        for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
            bool retryable = false;
            try {
                cbr::RetrievalResult result = score_async(*be, ctx, job, *be_scratch);
                breaker_on_success(home, probing);
                return result;
            } catch (const ShutdownInterrupt&) {
                // Not the backend's fault: no breaker verdict, no failover
                // (the engine is going away) — resolve with the shutdown
                // error.
                if (probing) {
                    breaker_probe_abort(home);
                }
                throw;
            } catch (const backend::BackendError& err) {
                if (err.kind() == backend::BackendErrorKind::integrity) {
                    // The thrower already invalidated the corrupted image;
                    // the retry below serves from a rebuild.
                    home.counters->integrity_rebuilds.fetch_add(
                        1, std::memory_order_release);
                }
                breaker_on_failure(home, probing);
                retryable = err.retryable();
            } catch (...) {
                // Unknown exception type: treat as permanent.
                breaker_on_failure(home, probing);
            }
            if (probing || !retryable || attempt + 1 >= attempts) {
                break;
            }
            home.counters->retries.fetch_add(1, std::memory_order_release);
            if (fault_.backoff_base.count() > 0) {
                // Deterministic linear backoff: retry k sleeps k * base.
                std::this_thread::sleep_for(fault_.backoff_base *
                                            static_cast<long>(attempt + 1));
            }
        }
    } else {
        breaker_on_failure(home, probing);
    }
    // Retries exhausted (or permanent, or the capability check itself
    // failed): per-request failover to the exact fallback.  cpu-simd is
    // bit-identical to the reference, so the caller cannot tell this
    // request's history from its bits — only the counters can.
    home.counters->failovers.fetch_add(1, std::memory_order_release);
    counters = fallback_counters_;
    return score_async(*fallback_backend_, ctx, job,
                       scratch.for_backend(*fallback_backend_));
}

cbr::RetrievalResult Engine::score_async(const backend::RetrievalBackend& be,
                                         const backend::ShardContext& ctx,
                                         const RetrieveJob& job,
                                         backend::BackendScratch& be_scratch) const {
    // The engine consumes every backend through the async pair — eager
    // backends complete on the first poll at zero cost, and a backend
    // with real queueing gets its overlap without a second dispatch path.
    backend::AsyncTicket ticket = be.submit(ctx, job.request, job.options, be_scratch);
    for (std::size_t polls = 1;; ++polls) {
        if (std::optional<cbr::RetrievalResult> result = be.poll(ticket)) {
            return std::move(*result);
        }
        // Pending only: a completed first poll never reaches these, so
        // accepted jobs still drain through shutdown — only a ticket
        // that is genuinely stuck resolves with the shutdown error.
        if (stopped_.load(std::memory_order_acquire)) {
            throw ShutdownInterrupt{};
        }
        if (fault_.poll_budget > 0 && polls >= fault_.poll_budget) {
            throw backend::BackendError(
                backend::BackendErrorKind::timeout,
                std::string(be.name()) + ": ticket pending past the poll budget");
        }
        std::this_thread::yield();
    }
}

Engine::BreakerDecision Engine::breaker_admit(ShardBackend& home) {
    Breaker& breaker = *home.breaker;
    std::lock_guard lock(breaker.mutex);
    switch (breaker.state) {
        case Breaker::State::closed:
            return BreakerDecision::serve;
        case Breaker::State::open:
            if (breaker.cooldown_left > 0) {
                --breaker.cooldown_left;
                return BreakerDecision::fallback;
            }
            // Cooldown over: half-open and fall through to the probe gate.
            breaker.state = Breaker::State::half_open;
            breaker.probe_streak = 0;
            [[fallthrough]];
        case Breaker::State::half_open:
            if (breaker.probe_inflight) {
                return BreakerDecision::fallback;  // one probe at a time
            }
            breaker.probe_inflight = true;
            return BreakerDecision::probe;
    }
    return BreakerDecision::serve;
}

void Engine::breaker_on_success(ShardBackend& home, bool probing) {
    if (home.breaker == nullptr) {
        return;
    }
    Breaker& breaker = *home.breaker;
    std::lock_guard lock(breaker.mutex);
    if (probing) {
        breaker.probe_inflight = false;
        if (breaker.state == Breaker::State::half_open &&
            ++breaker.probe_streak >= fault_.breaker_probe_successes) {
            breaker.state = Breaker::State::closed;
            breaker.failures = 0;
            home.counters->breaker_closes.fetch_add(1, std::memory_order_release);
        }
        return;
    }
    // Any closed-state success resets the consecutive-failure count: the
    // threshold measures a failure STREAK, not a lifetime total.
    breaker.failures = 0;
}

void Engine::breaker_on_failure(ShardBackend& home, bool probing) {
    if (home.breaker == nullptr) {
        return;
    }
    Breaker& breaker = *home.breaker;
    std::lock_guard lock(breaker.mutex);
    if (probing) {
        breaker.probe_inflight = false;
        if (breaker.state == Breaker::State::half_open) {
            // A failed probe reopens a full cooldown.
            breaker.state = Breaker::State::open;
            breaker.cooldown_left = fault_.breaker_cooldown;
            home.counters->breaker_opens.fetch_add(1, std::memory_order_release);
        }
        return;
    }
    if (breaker.state != Breaker::State::closed) {
        return;  // failures while open/half-open carry no extra signal
    }
    if (++breaker.failures >= fault_.breaker_threshold) {
        breaker.state = Breaker::State::open;
        breaker.cooldown_left = fault_.breaker_cooldown;
        breaker.failures = 0;
        home.counters->breaker_opens.fetch_add(1, std::memory_order_release);
    }
}

void Engine::breaker_probe_abort(ShardBackend& home) {
    if (home.breaker == nullptr) {
        return;
    }
    Breaker& breaker = *home.breaker;
    std::lock_guard lock(breaker.mutex);
    breaker.probe_inflight = false;
}

std::size_t Engine::steal_slot(const std::deque<Job>& items) const {
    // Mirror of the victim queue's own pop choice (BoundedMpmcQueue::pop /
    // earliest_locked): FIFO takes the front; EDF takes the smallest
    // extracted deadline, no-deadline items rank infinitely late, every
    // tie breaks towards arrival order.  Stealing EXACTLY the pop slot is
    // the no-bypass guarantee — a steal can never serve a job the home
    // worker would not have served next, so no higher-priority or
    // nearer-deadline job is overtaken on the victim shard.  When the pop
    // slot is an execute closure the steal declines entirely (>= size):
    // closures are pinned to their shard's thread, and taking a later
    // retrieval instead WOULD be a bypass.
    if (items.empty()) {
        return items.size();
    }
    std::size_t slot = 0;
    if (edf_) {
        std::optional<std::chrono::steady_clock::time_point> best;
        if (const RetrieveJob* r = std::get_if<RetrieveJob>(&items[0])) {
            best = r->cls.deadline;
        }
        for (std::size_t i = 1; i < items.size(); ++i) {
            const RetrieveJob* r = std::get_if<RetrieveJob>(&items[i]);
            const std::optional<std::chrono::steady_clock::time_point> deadline =
                r == nullptr ? std::nullopt : r->cls.deadline;
            if (deadline.has_value() && (!best.has_value() || *deadline < *best)) {
                slot = i;
                best = deadline;
            }
        }
    }
    return std::holds_alternative<RetrieveJob>(items[slot]) ? slot : items.size();
}

std::optional<Engine::Job> Engine::try_steal(std::size_t thief) {
    // Victim order: same-NUMA-node siblings before cross-node ones (a
    // steal that stays on the node streams local plan columns; crossing
    // the interconnect is the fallback, not the default), deepest backlog
    // first within each group.  Depths are advisory snapshots — extract()
    // re-decides under the victim's lock, so a raced-empty victim just
    // declines and the scan moves on.
    struct Candidate {
        std::size_t shard;
        std::size_t depth;
        bool same_node;
    };
    std::vector<Candidate> candidates;
    candidates.reserve(shards_.size());
    const std::size_t home_node = shard_node_[thief];
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        if (s == thief) {
            continue;
        }
        const std::size_t depth = shards_[s]->queue.size();
        if (depth >= steal_.min_victim_depth) {
            candidates.push_back(Candidate{s, depth, shard_node_[s] == home_node});
        }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                  if (a.same_node != b.same_node) {
                      return a.same_node;
                  }
                  if (a.depth != b.depth) {
                      return a.depth > b.depth;
                  }
                  return a.shard < b.shard;  // total order: scan is deterministic
              });
    for (const Candidate& candidate : candidates) {
        Shard& victim = *shards_[candidate.shard];
        std::optional<Job> loot =
            victim.queue.extract([this](const std::deque<Job>& items) {
                return steal_slot(items);
            });
        if (!loot.has_value()) {
            continue;  // raced empty, or an execute closure holds the pop slot
        }
        // Telemetry keyed by the HOME shard (shard_of is stable across
        // engine instances of equal shard count, so victim profiles are
        // comparable across runs).  Release pairs with stats()'s acquire:
        // a snapshot with this steal also has its submission, keeping
        // stolen <= served + backlog <= submitted coherent.
        victim.stolen.fetch_add(1, std::memory_order_release);
        if (candidate.same_node) {
            stolen_same_node_.fetch_add(1, std::memory_order_release);
        } else {
            stolen_cross_node_.fetch_add(1, std::memory_order_release);
        }
        return loot;
    }
    return std::nullopt;
}

void Engine::bind_plan_columns(const cbr::TypePlan& plan) const {
    if (!numa_live_) {
        return;
    }
    // Home the payload columns with the worker that scans them.  Advisory
    // mbind preference: failures (or pages already elsewhere) cost
    // locality only.  Metadata vectors are skipped by payload_regions() —
    // they are touched once per request, not streamed per row.
    const std::size_t node = shard_node_[shard_of(plan.id)];
    for (const cbr::TypePlan::PayloadRegion& region : plan.payload_regions()) {
        (void)util::numa::bind_memory_to_node(region.data, region.bytes, node);
    }
}

std::future<cbr::RetrievalResult> Engine::submit(cbr::Request request,
                                                 cbr::RetrievalOptions options) {
    // Counted before the push so stats() never observes served > submitted;
    // the refused-push path below undoes it.
    submitted_.fetch_add(1, std::memory_order_relaxed);
    RetrieveJob job{std::move(request), options, {}};
    std::future<cbr::RetrievalResult> future = job.promise.get_future();
    Shard& shard = *shards_[shard_of(job.request.type())];
    if (stopped_.load(std::memory_order_acquire) ||
        !shard.queue.push(Job{std::move(job)})) {
        // The job (promise included) was moved into push() and destroyed
        // there on refusal, so `future`'s shared state is broken_promise;
        // hand the caller a fresh future carrying the real reason instead.
        submitted_.fetch_sub(1, std::memory_order_relaxed);
        std::promise<cbr::RetrievalResult> broken;
        future = broken.get_future();
        broken.set_exception(engine_stopped());
        return future;
    }
    return future;
}

std::vector<std::future<cbr::RetrievalResult>> Engine::submit_batch(
    std::span<const cbr::Request> requests, std::span<const cbr::RetrievalOptions> options) {
    // An empty batch is a no-op with an empty result — checked before the
    // options contract so `submit_batch({}, anything)` cannot trip it.
    if (requests.empty()) {
        return {};
    }
    QFA_EXPECTS(options.size() == requests.size() || options.size() == 1,
                "submit_batch needs one options set per request, or one for the batch");
    // Group the jobs by owning shard first, then feed each shard's queue
    // with one push_all — one lock acquisition per shard per batch where a
    // submit() loop pays one per job.  Jobs stay in input order within a
    // shard (push_all preserves order, each shard has one FIFO consumer),
    // so a shard serves exactly the sequence a per-job loop would hand it.
    std::vector<std::future<cbr::RetrievalResult>> futures;
    futures.reserve(requests.size());
    std::vector<std::vector<Job>> grouped(shards_.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        RetrieveJob job{requests[i], options.size() == 1 ? options[0] : options[i], {}};
        futures.push_back(job.promise.get_future());
        grouped[shard_of(requests[i].type())].push_back(Job{std::move(job)});
    }
    enqueue_grouped(grouped);
    return futures;
}

std::vector<std::future<cbr::RetrievalResult>> Engine::submit_batch(
    std::span<const cbr::Request> requests, std::span<const cbr::RetrievalOptions> options,
    std::span<const JobClass> classes) {
    if (classes.empty()) {
        return submit_batch(requests, options);
    }
    if (requests.empty()) {
        return {};
    }
    QFA_EXPECTS(options.size() == requests.size() || options.size() == 1,
                "submit_batch needs one options set per request, or one for the batch");
    QFA_EXPECTS(classes.size() == requests.size() || classes.size() == 1,
                "submit_batch needs one class per request, one for the batch, or none");
    // Same grouped shape as the unclassed overload; the class rides on the
    // job so workers can expire, stamp and count per tenant.  Deadlines
    // already infeasible here never enter a queue: their futures resolve
    // with DeadlineExceeded immediately and they count as rejected.
    const auto now = std::chrono::steady_clock::now();
    std::vector<std::future<cbr::RetrievalResult>> futures;
    futures.reserve(requests.size());
    std::vector<std::vector<Job>> grouped(shards_.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const JobClass& cls = classes.size() == 1 ? classes[0] : classes[i];
        TenantCounters& tenant = tenant_counters(cls.tenant);
        RetrieveJob job{requests[i], options.size() == 1 ? options[0] : options[i], {}};
        futures.push_back(job.promise.get_future());
        if (cls.deadline.has_value() && admission_infeasible(*cls.deadline, now)) {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            tenant.rejected.fetch_add(1, std::memory_order_relaxed);
            job.promise.set_exception(std::make_exception_ptr(DeadlineExceeded{}));
            continue;
        }
        job.cls = cls;
        job.tenant = &tenant;
        job.enqueued_at = now;
        grouped[shard_of(requests[i].type())].push_back(Job{std::move(job)});
    }
    enqueue_grouped(grouped);
    return futures;
}

Engine::TenantCounters& Engine::tenant_counters(TenantId tenant) {
    std::lock_guard lock(tenant_mutex_);
    std::unique_ptr<TenantCounters>& slot = tenants_[tenant];
    if (slot == nullptr) {
        slot = std::make_unique<TenantCounters>();
    }
    return *slot;
}

AdmissionResult Engine::count_rejected(AdmissionStatus status, const JobClass& cls) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    tenant_counters(cls.tenant).rejected.fetch_add(1, std::memory_order_relaxed);
    return AdmissionResult{status, {}};
}

bool Engine::shed_one(Shard& shard, std::uint8_t incoming_priority) {
    // Victim choice under the queue lock: only classed retrievals are
    // sheddable (execute closures and unclassed closed-loop jobs are not),
    // only STRICTLY lower priority than the incoming request (shedding a
    // peer to admit a peer is churn, not triage), lowest priority first;
    // among equals the tenant shed from least so far loses — the per-tenant
    // debt ledger that keeps eviction spread across tenants.
    std::optional<Job> victim = shard.queue.extract([&](const std::deque<Job>& items) {
        std::size_t best = items.size();
        std::uint8_t best_priority = 0;
        std::uint64_t best_debt = 0;
        for (std::size_t i = 0; i < items.size(); ++i) {
            const RetrieveJob* candidate = std::get_if<RetrieveJob>(&items[i]);
            if (candidate == nullptr || candidate->tenant == nullptr ||
                candidate->cls.priority >= incoming_priority) {
                continue;
            }
            const std::uint64_t debt =
                candidate->tenant->shed_debt.load(std::memory_order_relaxed);
            if (best == items.size() || candidate->cls.priority < best_priority ||
                (candidate->cls.priority == best_priority && debt < best_debt)) {
                best = i;
                best_priority = candidate->cls.priority;
                best_debt = debt;
            }
        }
        return best;
    });
    if (!victim.has_value()) {
        return false;
    }
    RetrieveJob& job = std::get<RetrieveJob>(*victim);
    shed_.fetch_add(1, std::memory_order_release);
    job.tenant->shed.fetch_add(1, std::memory_order_relaxed);
    job.tenant->shed_debt.fetch_add(1, std::memory_order_relaxed);
    if (job.counted_inflight) {
        inflight_.fetch_sub(1, std::memory_order_relaxed);
    }
    if (job.cls.completed_at != nullptr) {
        *job.cls.completed_at = std::chrono::steady_clock::now();
    }
    job.promise.set_exception(std::make_exception_ptr(LoadShed{}));
    return true;
}

AdmissionResult Engine::try_admit(const cbr::Request& request,
                                  const cbr::RetrievalOptions& options, const JobClass& cls) {
    if (stopped_.load(std::memory_order_acquire)) {
        return AdmissionResult{AdmissionStatus::shutting_down, {}};
    }
    const auto now = std::chrono::steady_clock::now();
    if (cls.deadline.has_value() && admission_infeasible(*cls.deadline, now)) {
        return AdmissionResult{AdmissionStatus::deadline_infeasible, {}};
    }
    if (admission_.max_inflight > 0 &&
        inflight_.load(std::memory_order_relaxed) >= admission_.max_inflight) {
        return AdmissionResult{AdmissionStatus::queue_full, {}};
    }
    Shard& shard = *shards_[shard_of(request.type())];
    const bool shedding = admission_.policy == AdmissionPolicy::shed_lowest;
    // Depth bound tighter than the queue capacity.  size() is advisory; a
    // racing producer can slip past the check — the bound is a watermark,
    // not a hard invariant, and the queue capacity backstops it.
    if (admission_.max_queue_depth > 0 &&
        shard.queue.size() >= admission_.max_queue_depth) {
        if (!shedding || !shed_one(shard, cls.priority) ||
            shard.queue.size() >= admission_.max_queue_depth) {
            return AdmissionResult{AdmissionStatus::queue_full, {}};
        }
    }
    // Proactive watermarks (shed_lowest only): trade queued low-priority
    // work for headroom before the backlog saturates.
    if (shedding && admission_.shed_depth_watermark > 0 &&
        shard.queue.size() >= admission_.shed_depth_watermark) {
        (void)shed_one(shard, cls.priority);
    }
    if (shedding && admission_.shed_latency_watermark.count() > 0) {
        bool over = false;
        // Read-only scan through extract: select nothing, observe the
        // oldest queued retrieval's wait.
        (void)shard.queue.extract([&](const std::deque<Job>& items) {
            for (const Job& item : items) {
                if (const RetrieveJob* oldest = std::get_if<RetrieveJob>(&item)) {
                    over = now - oldest->enqueued_at > admission_.shed_latency_watermark;
                    break;
                }
            }
            return items.size();
        });
        if (over) {
            (void)shed_one(shard, cls.priority);
        }
    }
    TenantCounters& tenant = tenant_counters(cls.tenant);
    for (int attempt = 0; attempt < 2; ++attempt) {
        // The job takes a COPY of the request: a refused try_push_status
        // destroys the job it consumed, and both the shed-retry below and
        // submit_until's outer retries need the request again.  A request
        // is a type id plus a handful of constraints — the copy is noise
        // next to the clock reads on this path.
        RetrieveJob job{request, options, {}};
        std::future<cbr::RetrievalResult> future = job.promise.get_future();
        job.cls = cls;
        job.tenant = &tenant;
        job.counted_inflight = true;
        job.enqueued_at = now;
        // Counted before the push so stats() never observes completions
        // beyond submissions; refusals undo it, as in submit().
        submitted_.fetch_add(1, std::memory_order_relaxed);
        inflight_.fetch_add(1, std::memory_order_relaxed);
        const PushStatus status = shard.queue.try_push_status(Job{std::move(job)});
        if (status == PushStatus::accepted) {
            admitted_.fetch_add(1, std::memory_order_relaxed);
            tenant.admitted.fetch_add(1, std::memory_order_relaxed);
            return AdmissionResult{AdmissionStatus::admitted, std::move(future)};
        }
        submitted_.fetch_sub(1, std::memory_order_relaxed);
        inflight_.fetch_sub(1, std::memory_order_relaxed);
        if (status == PushStatus::closed) {
            return AdmissionResult{AdmissionStatus::shutting_down, {}};
        }
        // Full at hard capacity: under shed_lowest evict a victim and
        // retry once; a second full (shed found nothing, or a racing
        // producer refilled the slot) is final.
        if (!shedding || attempt > 0 || !shed_one(shard, cls.priority)) {
            break;
        }
    }
    return AdmissionResult{AdmissionStatus::queue_full, {}};
}

AdmissionResult Engine::try_submit(cbr::Request request, cbr::RetrievalOptions options,
                                   JobClass cls) {
    AdmissionResult result = try_admit(request, options, cls);
    if (!result.admitted()) {
        return count_rejected(result.status, cls);
    }
    return result;
}

AdmissionResult Engine::submit_until(cbr::Request request, cbr::RetrievalOptions options,
                                     std::chrono::steady_clock::time_point admit_by,
                                     JobClass cls) {
    // Retry on queue_full until admit_by, parking on the shard's depth
    // between attempts rather than spinning.  Every other status is final
    // immediately (shutting_down and deadline_infeasible cannot improve by
    // waiting — well, a deadline cannot un-pass).  Counters move exactly
    // once, on the final outcome: try_admit counts nothing on refusal.
    Shard& shard = *shards_[shard_of(request.type())];
    const std::size_t wait_depth = admission_.max_queue_depth > 0
                                       ? std::min(admission_.max_queue_depth,
                                                  shard.queue.capacity())
                                       : shard.queue.capacity();
    for (;;) {
        AdmissionResult result = try_admit(request, options, cls);
        if (result.admitted()) {
            return result;
        }
        if (result.status != AdmissionStatus::queue_full ||
            std::chrono::steady_clock::now() >= admit_by) {
            return count_rejected(result.status, cls);
        }
        if (shard.queue.wait_below(wait_depth, admit_by)) {
            // Depth is already fine, so the refusal was the inflight bound
            // (or a lost race): brief backoff instead of a hot retry loop —
            // workers signal progress through the queue, not the bound.
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
    }
}

std::future<void> Engine::execute(std::size_t shard, std::function<void()> fn) {
    QFA_EXPECTS(shard < shards_.size(), "execute needs a shard index below shard_count()");
    QFA_EXPECTS(fn != nullptr, "execute needs a callable");
    // Counted before the push so stats() never observes served > submitted;
    // the refused-push path below undoes it, as in submit().
    submitted_.fetch_add(1, std::memory_order_relaxed);
    ExecuteJob job{std::move(fn), {}};
    std::future<void> future = job.promise.get_future();
    Shard& target = *shards_[shard];
    if (stopped_.load(std::memory_order_acquire) ||
        !target.queue.push(Job{std::move(job)})) {
        submitted_.fetch_sub(1, std::memory_order_relaxed);
        std::promise<void> broken;
        future = broken.get_future();
        broken.set_exception(engine_stopped());
        return future;
    }
    return future;
}

std::vector<std::future<void>> Engine::execute_batch(std::span<ShardTask> tasks) {
    std::vector<std::future<void>> futures;
    futures.reserve(tasks.size());
    if (tasks.empty()) {
        return futures;
    }
    // Same shape as submit_batch: group by target shard, one push_all per
    // shard per batch; tasks bound for one shard run in input order.
    // Shard indices are validated while grouping, before the first push —
    // a bad index must surface synchronously with no task yet enqueued.
    std::vector<std::vector<Job>> grouped(shards_.size());
    for (ShardTask& task : tasks) {
        QFA_EXPECTS(task.shard < shards_.size(),
                    "execute_batch needs shard indices below shard_count()");
        QFA_EXPECTS(task.fn != nullptr, "execute_batch needs callables");
        ExecuteJob job{std::move(task.fn), {}};
        futures.push_back(job.promise.get_future());
        // In-place construction (not push_back(Job{...})): skips the
        // variant move, which GCC 12 mis-analyzes across alternatives.
        grouped[task.shard].emplace_back(std::in_place_type<ExecuteJob>, std::move(job));
    }
    enqueue_grouped(grouped);
    return futures;
}

void Engine::enqueue_grouped(std::vector<std::vector<Job>>& grouped) {
    for (std::size_t s = 0; s < grouped.size(); ++s) {
        std::vector<Job>& jobs = grouped[s];
        if (jobs.empty()) {
            continue;
        }
        // Counted before the push so stats() never observes served >
        // submitted; refused jobs are undone below, as in submit().
        submitted_.fetch_add(jobs.size(), std::memory_order_relaxed);
        const std::size_t accepted = stopped_.load(std::memory_order_acquire)
                                         ? 0
                                         : shards_[s]->queue.push_all(std::span<Job>(jobs));
        if (accepted < jobs.size()) {
            // Closed mid-batch: the tail jobs still own their promises —
            // resolve them to the shut-down error their futures report.
            submitted_.fetch_sub(jobs.size() - accepted, std::memory_order_relaxed);
            for (std::size_t j = accepted; j < jobs.size(); ++j) {
                std::visit([](auto& job) { job.promise.set_exception(engine_stopped()); },
                           jobs[j]);
            }
        }
    }
}

std::vector<cbr::RetrievalResult> Engine::retrieve_all(
    std::span<const cbr::Request> requests, const cbr::RetrievalOptions& options) {
    std::vector<std::future<cbr::RetrievalResult>> futures = submit_batch(requests, options);
    std::vector<cbr::RetrievalResult> results;
    results.reserve(futures.size());
    for (std::future<cbr::RetrievalResult>& future : futures) {
        results.push_back(future.get());
    }
    return results;
}

cbr::RetainVerdict Engine::retain(cbr::TypeId type, cbr::Implementation impl,
                                  double novelty_threshold) {
    std::lock_guard lock(writer_mutex_);
    const cbr::RetainVerdict verdict = master_.retain(type, std::move(impl), novelty_threshold);
    if (verdict == cbr::RetainVerdict::retained) {
        retains_.fetch_add(1, std::memory_order_relaxed);
        publish_locked(type);
    }
    return verdict;
}

bool Engine::add_type(cbr::TypeId id, std::string name) {
    std::lock_guard lock(writer_mutex_);
    if (!master_.add_type(id, std::move(name))) {
        return false;
    }
    publish_locked(id);
    return true;
}

bool Engine::remove_implementation(cbr::TypeId type, cbr::ImplId impl) {
    std::lock_guard lock(writer_mutex_);
    if (!master_.remove_implementation(type, impl)) {
        return false;
    }
    publish_locked(type);
    return true;
}

void Engine::publish_locked(cbr::TypeId changed) {
    const GenerationPtr previous = store_.load();
    GenerationPtr next = patch_generation(*previous, master_.epoch(), master_.snapshot(),
                                          master_.bounds(), changed);
    // COW telemetry: how many of the successor's plans are pointer-aliased
    // from the predecessor (vs spliced/cloned).  Both plan lists are
    // ordered by TypeId, so one merge pass finds every alias.
    std::uint64_t shared = 0;
    const auto& old_plans = previous->compiled.plans();
    const auto& new_plans = next->compiled.plans();
    for (std::size_t o = 0, n = 0; o < old_plans.size() || n < new_plans.size();) {
        if (o < old_plans.size() && n < new_plans.size() &&
            old_plans[o]->id.value() == new_plans[n]->id.value()) {
            if (old_plans[o] == new_plans[n]) {
                ++shared;
            } else {
                // Spliced or cloned: fresh payload allocations — re-home
                // them with the owning shard's node (no-op when NUMA off).
                // Aliased plans keep their placement, so a publish costs
                // mbind calls only for what actually changed.
                bind_plan_columns(*new_plans[n]);
            }
            ++o;
            ++n;
        } else if (n >= new_plans.size() ||
                   (o < old_plans.size() &&
                    old_plans[o]->id.value() < new_plans[n]->id.value())) {
            ++o;
        } else {
            bind_plan_columns(*new_plans[n]);  // newly added type
            ++n;
        }
    }
    // Published before shared (release), mirrored by stats() reading
    // shared (acquire) before published: any snapshot that includes an
    // epoch's aliased plans also includes its published total, so
    // cow_plans_shared <= cow_plans_published always holds.
    cow_plans_published_.fetch_add(new_plans.size(), std::memory_order_release);
    cow_plans_shared_.fetch_add(shared, std::memory_order_release);
    store_.publish(std::move(next));
    published_epochs_.fetch_add(1, std::memory_order_relaxed);
}

cbr::MaintenanceStats Engine::maintenance_stats() const {
    std::lock_guard lock(writer_mutex_);
    return master_.stats();
}

EngineStats Engine::stats() const {
    // Snapshot order is load-bearing (see EngineStats): completions are
    // read before submissions.  A worker bumps its shard's `served` with a
    // release store only after the submitter's `submitted_` increment
    // (ordered through the queue mutex), so acquiring a completion here
    // makes its submission visible to the later `submitted_` read — no
    // snapshot can show served > submitted.  `executed` is read first for
    // the same reason relative to `served` (executed <= served always).
    EngineStats stats;
    stats.retains = retains_.load(std::memory_order_relaxed);
    stats.published_epochs = published_epochs_.load(std::memory_order_relaxed);
    // shared acquired before published: see publish_locked for the pairing
    // that keeps cow_plans_shared <= cow_plans_published in any snapshot.
    stats.cow_plans_shared = cow_plans_shared_.load(std::memory_order_acquire);
    stats.cow_plans_published = cow_plans_published_.load(std::memory_order_relaxed);
    stats.executed = executed_.load(std::memory_order_acquire);
    // All three completion-side counters (served / expired / shed) are
    // acquired before `submitted` is read, so no snapshot can show
    // served + expired + shed > submitted.
    stats.expired = expired_.load(std::memory_order_acquire);
    stats.shed = shed_.load(std::memory_order_acquire);
    // Steal counters are completion-side too: acquired before `submitted`
    // so stolen <= submitted in any snapshot (a stolen job was submitted
    // before it could be extracted, ordered through the queue mutex).
    stats.stolen_same_node = stolen_same_node_.load(std::memory_order_acquire);
    stats.stolen_cross_node = stolen_cross_node_.load(std::memory_order_acquire);
    stats.shard_stolen.reserve(shards_.size());
    stats.shard_served.reserve(shards_.size());
    for (const std::unique_ptr<Shard>& shard : shards_) {
        const std::uint64_t stolen = shard->stolen.load(std::memory_order_acquire);
        stats.shard_stolen.push_back(stolen);
        stats.stolen += stolen;
        const std::uint64_t served = shard->served.load(std::memory_order_acquire);
        stats.shard_served.push_back(served);
        stats.served += served;
    }
    stats.shard_node = shard_node_;
    // Backend slices are completion-side: acquired before `submitted` so
    // Σ backends.served <= submitted in any snapshot.  The map itself is
    // constructor-final — no lock needed.
    for (const auto& [name, counters] : backend_counters_) {
        EngineStats::BackendStats slice;
        slice.served = counters->served.load(std::memory_order_acquire);
        slice.fallbacks = counters->fallbacks.load(std::memory_order_acquire);
        slice.retries = counters->retries.load(std::memory_order_acquire);
        slice.failovers = counters->failovers.load(std::memory_order_acquire);
        slice.breaker_opens = counters->breaker_opens.load(std::memory_order_acquire);
        slice.breaker_closes = counters->breaker_closes.load(std::memory_order_acquire);
        slice.probes = counters->probes.load(std::memory_order_acquire);
        slice.integrity_rebuilds =
            counters->integrity_rebuilds.load(std::memory_order_acquire);
        stats.backends.emplace(name, slice);
    }
    stats.submitted = submitted_.load(std::memory_order_relaxed);
    stats.admitted = admitted_.load(std::memory_order_relaxed);
    stats.rejected = rejected_.load(std::memory_order_relaxed);
    {
        std::lock_guard lock(tenant_mutex_);
        for (const auto& [tenant, counters] : tenants_) {
            EngineStats::TenantStats slice;
            slice.served = counters->served.load(std::memory_order_acquire);
            slice.expired = counters->expired.load(std::memory_order_acquire);
            slice.shed = counters->shed.load(std::memory_order_acquire);
            slice.admitted = counters->admitted.load(std::memory_order_relaxed);
            slice.rejected = counters->rejected.load(std::memory_order_relaxed);
            stats.tenants.emplace(tenant, slice);
        }
    }
    return stats;
}

void Engine::shutdown() {
    // Serialized: a concurrent second caller (including the destructor)
    // blocks until the first caller's close + joins complete, so nobody
    // returns from shutdown() while workers are still running.
    std::lock_guard lock(shutdown_mutex_);
    if (stopped_.exchange(true, std::memory_order_acq_rel)) {
        return;
    }
    for (const std::unique_ptr<Shard>& shard : shards_) {
        shard->queue.close();
    }
    for (const std::unique_ptr<Shard>& shard : shards_) {
        if (shard->worker.joinable()) {
            shard->worker.join();
        }
    }
}

}  // namespace qfa::serve
