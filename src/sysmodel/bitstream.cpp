#include "sysmodel/bitstream.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace qfa::sys {

Repository::Repository(double read_bandwidth_bytes_per_us)
    : bytes_per_us_(read_bandwidth_bytes_per_us) {
    QFA_EXPECTS(bytes_per_us_ > 0.0, "FLASH bandwidth must be positive");
}

void Repository::store(ImplRef ref, ConfigBlob blob) {
    blobs_[key(ref)] = blob;
}

void Repository::import_case_base(const cbr::CaseBase& cb) {
    for (const cbr::FunctionType& type : cb.types()) {
        for (const cbr::Implementation& impl : type.impls) {
            store(ImplRef{type.id, impl.id},
                  ConfigBlob{impl.target, impl.meta.config_bytes});
        }
    }
}

std::optional<ConfigBlob> Repository::find(ImplRef ref) const {
    const auto it = blobs_.find(key(ref));
    if (it == blobs_.end()) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    return it->second;
}

SimTime Repository::fetch_time(const ConfigBlob& blob) const {
    return static_cast<SimTime>(
        std::ceil(static_cast<double>(blob.bytes) / bytes_per_us_));
}

}  // namespace qfa::sys
