// Opcode / bitstream repository (fig. 1: "Opcode/Bitstream-Repository
// (FLASH)").
//
// §3: "Since every available function realization has a unique identifier it
// will be possible to retrieve the function's corresponding configuration
// data (CPU opcode / FPGA bitstream) from a global function repository for
// reconfiguration."  The model stores per-variant blob sizes and computes
// fetch latency from a FLASH read bandwidth; the reconfiguration controller
// adds the configuration-port time on top.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "core/case_base.hpp"
#include "core/ids.hpp"
#include "sysmodel/events.hpp"
#include "sysmodel/task.hpp"

namespace qfa::sys {

/// One stored configuration blob.
struct ConfigBlob {
    cbr::Target target = cbr::Target::gpp;
    std::uint32_t bytes = 0;
};

/// The FLASH-backed repository.
class Repository {
public:
    /// `read_bandwidth_bytes_per_us` models sequential FLASH read speed
    /// (default 20 MB/s — a 2004-class parallel NOR flash).
    explicit Repository(double read_bandwidth_bytes_per_us = 20.0);

    /// Registers (or replaces) the blob for one implementation variant.
    void store(ImplRef ref, ConfigBlob blob);

    /// Imports every implementation of a case base (sizes/targets from the
    /// catalogue's deployment metadata).
    void import_case_base(const cbr::CaseBase& cb);

    /// Blob lookup; nullopt on a repository miss.
    [[nodiscard]] std::optional<ConfigBlob> find(ImplRef ref) const;

    /// Time to stream a blob out of FLASH.
    [[nodiscard]] SimTime fetch_time(const ConfigBlob& blob) const;

    [[nodiscard]] std::size_t size() const noexcept { return blobs_.size(); }
    [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
    [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

private:
    static std::uint32_t key(ImplRef ref) noexcept {
        return (static_cast<std::uint32_t>(ref.type.value()) << 16) | ref.impl.value();
    }

    double bytes_per_us_;
    std::unordered_map<std::uint32_t, ConfigBlob> blobs_;
    mutable std::uint64_t hits_ = 0;
    mutable std::uint64_t misses_ = 0;
};

}  // namespace qfa::sys
