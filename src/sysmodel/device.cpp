#include "sysmodel/device.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace qfa::sys {

FpgaDevice::FpgaDevice(DeviceId id, std::string name, std::vector<SlotCapacity> slots)
    : id_(id), name_(std::move(name)) {
    QFA_EXPECTS(!slots.empty(), "an FPGA needs at least one slot");
    slots_.reserve(slots.size());
    for (const SlotCapacity& capacity : slots) {
        slots_.push_back(Slot{capacity, std::nullopt, 0});
    }
}

const Slot& FpgaDevice::slot(std::size_t index) const {
    QFA_EXPECTS(index < slots_.size(), "slot index out of range");
    return slots_[index];
}

std::optional<std::size_t> FpgaDevice::find_free_slot(
    const cbr::ResourceDemand& demand) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].free() && slots_[i].capacity.fits(demand)) {
            return i;
        }
    }
    return std::nullopt;
}

std::vector<std::size_t> FpgaDevice::fitting_slots(const cbr::ResourceDemand& demand) const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].capacity.fits(demand)) {
            out.push_back(i);
        }
    }
    return out;
}

void FpgaDevice::occupy(std::size_t slot_index, TaskId task) {
    QFA_EXPECTS(slot_index < slots_.size(), "slot index out of range");
    QFA_EXPECTS(slots_[slot_index].free(), "slot is already occupied");
    slots_[slot_index].occupant = task;
    ++slots_[slot_index].reconfig_count;
}

std::optional<TaskId> FpgaDevice::vacate(std::size_t slot_index) {
    QFA_EXPECTS(slot_index < slots_.size(), "slot index out of range");
    std::optional<TaskId> evicted = slots_[slot_index].occupant;
    slots_[slot_index].occupant.reset();
    return evicted;
}

double FpgaDevice::occupancy() const noexcept {
    const auto used = static_cast<double>(
        std::count_if(slots_.begin(), slots_.end(),
                      [](const Slot& s) { return !s.free(); }));
    return used / static_cast<double>(slots_.size());
}

ProcessorDevice::ProcessorDevice(DeviceId id, std::string name, ProcessorKind kind,
                                 std::uint32_t capacity_pct)
    : id_(id), name_(std::move(name)), kind_(kind), capacity_pct_(capacity_pct) {
    QFA_EXPECTS(capacity_pct > 0, "processor capacity must be positive");
}

std::uint32_t ProcessorDevice::headroom_pct() const noexcept {
    return capacity_pct_ - used_pct_;
}

bool ProcessorDevice::admit(TaskId task, std::uint32_t load_pct) {
    QFA_EXPECTS(load_pct > 0, "a software task must consume some load");
    if (used_pct_ + load_pct > capacity_pct_) {
        return false;
    }
    used_pct_ += load_pct;
    admitted_.emplace_back(task, load_pct);
    return true;
}

bool ProcessorDevice::remove(TaskId task) {
    const auto it = std::find_if(admitted_.begin(), admitted_.end(),
                                 [task](const auto& entry) { return entry.first == task; });
    if (it == admitted_.end()) {
        return false;
    }
    used_pct_ -= it->second;
    admitted_.erase(it);
    return true;
}

double ProcessorDevice::utilisation() const noexcept {
    return static_cast<double>(used_pct_) / static_cast<double>(capacity_pct_);
}

}  // namespace qfa::sys
