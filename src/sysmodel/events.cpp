#include "sysmodel/events.hpp"

namespace qfa::sys {

EventId EventQueue::schedule(SimTime at, std::function<void()> action) {
    QFA_EXPECTS(at >= now_, "cannot schedule events in the past");
    QFA_EXPECTS(static_cast<bool>(action), "event action must be callable");
    const auto key = std::make_pair(at, next_sequence_++);
    const EventId id{next_id_++};
    events_.emplace(key, Scheduled{id.value, std::move(action)});
    index_.emplace(id.value, key);
    return id;
}

bool EventQueue::cancel(EventId id) {
    const auto it = index_.find(id.value);
    if (it == index_.end()) {
        return false;
    }
    events_.erase(it->second);
    index_.erase(it);
    return true;
}

bool EventQueue::step() {
    if (events_.empty()) {
        return false;
    }
    const auto it = events_.begin();
    now_ = it->first.first;
    // Detach before running: the action may schedule/cancel other events.
    std::function<void()> action = std::move(it->second.action);
    index_.erase(it->second.id);
    events_.erase(it);
    ++executed_;
    action();
    return true;
}

void EventQueue::run_until(SimTime until) {
    while (!events_.empty() && events_.begin()->first.first <= until) {
        (void)step();
    }
    now_ = std::max(now_, until);
}

void EventQueue::run_all(std::uint64_t max_events) {
    std::uint64_t count = 0;
    while (step()) {
        QFA_ASSERT(++count <= max_events, "event cascade exceeded the safety cap");
    }
}

}  // namespace qfa::sys
