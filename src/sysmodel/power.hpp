// Power and energy accounting.
//
// The introduction motivates "increases of system-performance and
// energy/power-efficiency" from intelligent allocation; the energy-aware
// allocation policy (E10) needs numbers to act on.  The model integrates
// piecewise-constant power over simulated time: a device-base draw plus the
// static/dynamic draw of every resident task, re-sampled whenever the task
// population changes.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sysmodel/events.hpp"
#include "sysmodel/task.hpp"

namespace qfa::sys {

/// Integrates platform power over simulated time.
class PowerModel {
public:
    /// `base_mw` is the constant platform draw (always-on logic).
    explicit PowerModel(std::uint32_t base_mw = 250);

    /// Registers a task's draw from `now` on (call when it becomes active).
    void task_started(TaskId task, std::uint32_t power_mw, SimTime now);

    /// Removes a task's draw (call when it finishes or is preempted).
    void task_stopped(TaskId task, SimTime now);

    /// Current total draw in mW.
    [[nodiscard]] std::uint32_t current_power_mw() const noexcept;

    /// Energy integrated up to `at`, in microjoules (mW * us / 1000).
    [[nodiscard]] double energy_uj(SimTime at) const;

    [[nodiscard]] std::size_t active_tasks() const noexcept { return draws_.size(); }

private:
    void integrate_to(SimTime now) const;

    std::uint32_t base_mw_;
    std::unordered_map<TaskId, std::uint32_t> draws_;
    mutable SimTime last_sample_ = 0;
    mutable double energy_mw_us_ = 0.0;
};

}  // namespace qfa::sys
