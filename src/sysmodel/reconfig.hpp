// Run-time reconfiguration timing model.
//
// FPGA variants are programmed through the configuration port (ICAP on
// Virtex-II: 8 bit at 66 MHz = 66 MB/s); DSP kernels and CPU opcode are
// copied into program memory at bus speed.  Loads through one port are
// serialised: a reconfiguration starting while the port is busy queues
// behind it (the model tracks the port-busy horizon per device).
#pragma once

#include <cstdint>
#include <map>

#include "core/ids.hpp"
#include "sysmodel/bitstream.hpp"
#include "sysmodel/events.hpp"

namespace qfa::sys {

/// Timing parameters of the configuration paths.
struct ReconfigTiming {
    double icap_bytes_per_us = 66.0;    ///< Virtex-II ICAP, 8 bit @ 66 MHz
    double copy_bytes_per_us = 132.0;   ///< program-memory copy bandwidth
    SimTime setup_us = 20;              ///< per-load constant overhead
};

/// Serialising reconfiguration controller.
class ReconfigController {
public:
    explicit ReconfigController(ReconfigTiming timing = {});

    /// Pure programming time of a blob on its target (no queueing).
    [[nodiscard]] SimTime programming_time(const ConfigBlob& blob) const;

    /// Reserves the configuration port of `device` starting no earlier than
    /// `now`; returns the completion time (queueing + programming).
    [[nodiscard]] SimTime reserve(std::uint16_t device, SimTime now,
                                  const ConfigBlob& blob);

    /// Time at which the device's port becomes free.
    [[nodiscard]] SimTime busy_until(std::uint16_t device) const;

    [[nodiscard]] std::uint64_t reconfigurations() const noexcept { return count_; }
    [[nodiscard]] SimTime total_busy_time() const noexcept { return total_busy_; }

private:
    ReconfigTiming timing_;
    std::map<std::uint16_t, SimTime> port_free_at_;
    std::uint64_t count_ = 0;
    SimTime total_busy_ = 0;
};

}  // namespace qfa::sys
