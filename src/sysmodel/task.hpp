// Task model: one instantiated function variant on one device.
//
// The allocation manager turns a granted function request into a task: an
// FPGA module occupying a slot, a DSP kernel, or a CPU software task.  The
// lifecycle mirrors the run-time system of [7]: configuration data is
// fetched and loaded (loading), the function executes (active), it may be
// preempted by a more important task (preempted), and finally ends
// (finished).
#pragma once

#include <cstdint>
#include <functional>

#include "core/deploy.hpp"
#include "core/ids.hpp"

namespace qfa::sys {

/// Unique task identifier.
struct TaskId {
    std::uint32_t value = 0;
    friend constexpr bool operator==(TaskId, TaskId) noexcept = default;
    friend constexpr auto operator<=>(TaskId, TaskId) noexcept = default;
};

/// Refers to one implementation variant in the catalogue.
struct ImplRef {
    cbr::TypeId type;
    cbr::ImplId impl;
    friend constexpr bool operator==(ImplRef, ImplRef) noexcept = default;
};

/// Task lifecycle states.
enum class TaskState : std::uint8_t {
    loading,    ///< configuration data being fetched / programmed
    active,     ///< running
    preempted,  ///< displaced by a higher-priority task
    finished,   ///< completed or released
};

[[nodiscard]] constexpr const char* task_state_name(TaskState s) noexcept {
    switch (s) {
        case TaskState::loading: return "loading";
        case TaskState::active: return "active";
        case TaskState::preempted: return "preempted";
        case TaskState::finished: return "finished";
    }
    return "?";
}

/// Priority: higher value wins preemption decisions (adaptive priorities in
/// the spirit of [7]).
using Priority = std::uint8_t;

/// One task instance.
struct Task {
    TaskId id;
    ImplRef impl;
    cbr::Target target = cbr::Target::gpp;
    TaskState state = TaskState::loading;
    Priority priority = 0;
    cbr::ResourceDemand demand;
    std::uint32_t static_power_mw = 0;
    std::uint32_t dynamic_power_mw = 0;
    std::uint16_t device = 0;      ///< DeviceId value of the hosting device
    std::uint32_t slot = 0;        ///< slot index (FPGA targets only)
};

}  // namespace qfa::sys

template <>
struct std::hash<qfa::sys::TaskId> {
    std::size_t operator()(qfa::sys::TaskId id) const noexcept {
        return std::hash<std::uint32_t>{}(id.value);
    }
};
