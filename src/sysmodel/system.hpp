// The platform: devices + repository + reconfiguration + power + events.
//
// This is the "HW-Layer API" level of fig. 1: it knows "all hardware
// relevant aspects like resource consumption, low-level communication and
// reconfiguration of system parts" and serves the allocation layer above
// with load snapshots, placement queries and task lifecycle operations.
// Policy (which candidate to take, whether preemption is worth it) lives in
// qfa::alloc — the platform only executes mechanically.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/case_base.hpp"
#include "sysmodel/bitstream.hpp"
#include "sysmodel/device.hpp"
#include "sysmodel/events.hpp"
#include "sysmodel/power.hpp"
#include "sysmodel/reconfig.hpp"
#include "sysmodel/task.hpp"

namespace qfa::sys {

/// Platform construction parameters.
struct PlatformConfig {
    std::size_t fpga_count = 1;
    /// Slot geometry replicated on every FPGA (default: four slots sized
    /// like a quarter of an XC2V3000 column region).
    std::vector<SlotCapacity> fpga_slots = {
        {3584, 24, 24}, {3584, 24, 24}, {3584, 24, 24}, {3584, 24, 24}};
    bool with_dsp = true;
    ReconfigTiming reconfig_timing{};
    double flash_bytes_per_us = 20.0;
    std::uint32_t base_power_mw = 250;
};

/// Where a variant would be placed.
struct PlacementPlan {
    cbr::Target target = cbr::Target::gpp;
    std::uint16_t device = 0;
    std::uint32_t slot = 0;  ///< FPGA targets only
};

/// Snapshot of current system load (what the allocation layer sees).
struct LoadSnapshot {
    SimTime now = 0;
    struct FpgaView {
        std::uint16_t device = 0;
        std::size_t total_slots = 0;
        std::size_t free_slots = 0;
        double occupancy = 0.0;
    };
    std::vector<FpgaView> fpgas;
    std::uint32_t cpu_headroom_pct = 0;
    bool has_dsp = false;
    std::uint32_t dsp_headroom_pct = 0;
    std::uint32_t power_mw = 0;
};

/// Why a launch failed.
enum class LaunchError {
    repository_miss,    ///< no configuration data for the variant
    placement_invalid,  ///< the plan no longer fits (stale snapshot)
};

/// Result of a launch attempt.
struct LaunchOutcome {
    std::optional<TaskId> task;
    std::optional<LaunchError> error;
    SimTime active_at = 0;  ///< when the function becomes usable

    [[nodiscard]] bool ok() const noexcept { return task.has_value(); }
};

/// Aggregate counters.
struct PlatformStats {
    std::uint64_t launches = 0;
    std::uint64_t releases = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t repository_misses = 0;
};

/// The multi-device platform.
class Platform {
public:
    explicit Platform(PlatformConfig config = {});

    // -- queries (HW-Layer API) ------------------------------------------
    [[nodiscard]] LoadSnapshot snapshot() const;

    /// First placement with free capacity for the variant, if any.
    [[nodiscard]] std::optional<PlacementPlan> find_placement(
        const cbr::Implementation& impl) const;

    /// Active/loading tasks that block a placement for `impl` and have
    /// priority strictly below `below`, cheapest victims (lowest priority)
    /// first.  Empty when no preemption can help.
    [[nodiscard]] std::vector<TaskId> preemption_candidates(const cbr::Implementation& impl,
                                                            Priority below) const;

    // -- lifecycle --------------------------------------------------------
    /// Fetches configuration data, occupies resources per `plan`, schedules
    /// the load and returns the new task (state: loading -> active at
    /// `active_at`).
    LaunchOutcome launch(ImplRef ref, const cbr::Implementation& impl, Priority priority,
                         const PlacementPlan& plan);

    /// Frees a task's resources (any state); false when unknown/finished.
    bool release(TaskId id);

    /// Evicts a task (resources freed, state preempted); false when
    /// unknown or already finished.
    bool preempt(TaskId id);

    [[nodiscard]] const Task* task(TaskId id) const;

    // -- subsystem access -------------------------------------------------
    [[nodiscard]] EventQueue& events() noexcept { return events_; }
    [[nodiscard]] Repository& repository() noexcept { return repository_; }
    [[nodiscard]] const ReconfigController& reconfig() const noexcept { return reconfig_; }
    [[nodiscard]] PowerModel& power() noexcept { return power_; }
    [[nodiscard]] const PlatformStats& stats() const noexcept { return stats_; }
    [[nodiscard]] std::size_t fpga_count() const noexcept { return fpgas_.size(); }
    [[nodiscard]] const FpgaDevice& fpga(std::size_t index) const;
    [[nodiscard]] const ProcessorDevice& cpu() const noexcept { return cpu_; }

private:
    /// Frees the device resources held by a task.
    void free_resources(const Task& task);

    PlatformConfig config_;
    EventQueue events_;
    Repository repository_;
    ReconfigController reconfig_;
    PowerModel power_;

    ProcessorDevice cpu_;
    std::optional<ProcessorDevice> dsp_;
    std::vector<FpgaDevice> fpgas_;

    std::unordered_map<TaskId, Task> tasks_;
    std::uint32_t next_task_ = 1;
    PlatformStats stats_;
};

}  // namespace qfa::sys
