#include "sysmodel/system.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace qfa::sys {

namespace {

constexpr std::uint16_t kCpuDevice = 0;
constexpr std::uint16_t kDspDevice = 1;
constexpr std::uint16_t kFirstFpgaDevice = 2;

}  // namespace

Platform::Platform(PlatformConfig config)
    : config_(std::move(config)),
      repository_(config_.flash_bytes_per_us),
      reconfig_(config_.reconfig_timing),
      power_(config_.base_power_mw),
      cpu_(DeviceId{kCpuDevice}, "cpu0", ProcessorKind::cpu) {
    if (config_.with_dsp) {
        dsp_.emplace(DeviceId{kDspDevice}, "dsp0", ProcessorKind::dsp);
    }
    QFA_EXPECTS(config_.fpga_count >= 1, "platform needs at least one FPGA");
    for (std::size_t i = 0; i < config_.fpga_count; ++i) {
        fpgas_.emplace_back(DeviceId{static_cast<std::uint16_t>(kFirstFpgaDevice + i)},
                            "fpga" + std::to_string(i), config_.fpga_slots);
    }
}

const FpgaDevice& Platform::fpga(std::size_t index) const {
    QFA_EXPECTS(index < fpgas_.size(), "FPGA index out of range");
    return fpgas_[index];
}

LoadSnapshot Platform::snapshot() const {
    LoadSnapshot snap;
    snap.now = events_.now();
    for (const FpgaDevice& device : fpgas_) {
        LoadSnapshot::FpgaView view;
        view.device = device.id().value;
        view.total_slots = device.slot_count();
        for (std::size_t s = 0; s < device.slot_count(); ++s) {
            if (device.slot(s).free()) {
                ++view.free_slots;
            }
        }
        view.occupancy = device.occupancy();
        snap.fpgas.push_back(view);
    }
    snap.cpu_headroom_pct = cpu_.headroom_pct();
    snap.has_dsp = dsp_.has_value();
    snap.dsp_headroom_pct = dsp_ ? dsp_->headroom_pct() : 0;
    snap.power_mw = power_.current_power_mw();
    return snap;
}

std::optional<PlacementPlan> Platform::find_placement(const cbr::Implementation& impl) const {
    switch (impl.target) {
        case cbr::Target::fpga:
            for (const FpgaDevice& device : fpgas_) {
                if (auto slot = device.find_free_slot(impl.meta.demand)) {
                    return PlacementPlan{cbr::Target::fpga, device.id().value,
                                         static_cast<std::uint32_t>(*slot)};
                }
            }
            return std::nullopt;
        case cbr::Target::dsp:
            if (dsp_ && impl.meta.demand.dsp_load_pct <= dsp_->headroom_pct() &&
                impl.meta.demand.dsp_load_pct > 0) {
                return PlacementPlan{cbr::Target::dsp, kDspDevice, 0};
            }
            return std::nullopt;
        case cbr::Target::gpp:
            if (impl.meta.demand.cpu_load_pct <= cpu_.headroom_pct() &&
                impl.meta.demand.cpu_load_pct > 0) {
                return PlacementPlan{cbr::Target::gpp, kCpuDevice, 0};
            }
            return std::nullopt;
    }
    return std::nullopt;
}

std::vector<TaskId> Platform::preemption_candidates(const cbr::Implementation& impl,
                                                    Priority below) const {
    std::vector<TaskId> victims;
    auto priority_of = [this](TaskId id) {
        const auto it = tasks_.find(id);
        return it == tasks_.end() ? Priority{255} : it->second.priority;
    };

    switch (impl.target) {
        case cbr::Target::fpga: {
            // Any occupied fitting slot whose occupant has lower priority.
            for (const FpgaDevice& device : fpgas_) {
                for (std::size_t s : device.fitting_slots(impl.meta.demand)) {
                    const Slot& slot = device.slot(s);
                    if (!slot.free() && priority_of(*slot.occupant) < below) {
                        victims.push_back(*slot.occupant);
                    }
                }
            }
            break;
        }
        case cbr::Target::dsp:
        case cbr::Target::gpp: {
            const ProcessorDevice* proc =
                impl.target == cbr::Target::dsp ? (dsp_ ? &*dsp_ : nullptr) : &cpu_;
            if (proc == nullptr) {
                break;
            }
            const std::uint32_t need = impl.target == cbr::Target::dsp
                                           ? impl.meta.demand.dsp_load_pct
                                           : impl.meta.demand.cpu_load_pct;
            if (need <= proc->headroom_pct()) {
                break;  // no preemption needed
            }
            // Collect lower-priority tasks, cheapest first, until the freed
            // capacity would cover the deficit.
            std::vector<std::pair<TaskId, std::uint32_t>> candidates;
            for (const auto& [task, load] : proc->admitted()) {
                if (priority_of(task) < below) {
                    candidates.emplace_back(task, load);
                }
            }
            std::sort(candidates.begin(), candidates.end(),
                      [&priority_of](const auto& a, const auto& b) {
                          return priority_of(a.first) < priority_of(b.first);
                      });
            std::uint32_t freed = proc->headroom_pct();
            for (const auto& [task, load] : candidates) {
                if (freed >= need) {
                    break;
                }
                victims.push_back(task);
                freed += load;
            }
            if (freed < need) {
                victims.clear();  // even preempting everything would not fit
            }
            break;
        }
    }
    std::sort(victims.begin(), victims.end(), [&priority_of](TaskId a, TaskId b) {
        return priority_of(a) < priority_of(b);
    });
    return victims;
}

LaunchOutcome Platform::launch(ImplRef ref, const cbr::Implementation& impl,
                               Priority priority, const PlacementPlan& plan) {
    LaunchOutcome outcome;
    const auto blob = repository_.find(ref);
    if (!blob) {
        ++stats_.repository_misses;
        outcome.error = LaunchError::repository_miss;
        return outcome;
    }

    // Occupy resources per the plan; reject stale plans.
    switch (plan.target) {
        case cbr::Target::fpga: {
            const std::size_t index = plan.device - 2;
            if (index >= fpgas_.size() || plan.slot >= fpgas_[index].slot_count() ||
                !fpgas_[index].slot(plan.slot).free() ||
                !fpgas_[index].slot(plan.slot).capacity.fits(impl.meta.demand)) {
                outcome.error = LaunchError::placement_invalid;
                return outcome;
            }
            break;
        }
        case cbr::Target::dsp:
            if (!dsp_ || impl.meta.demand.dsp_load_pct > dsp_->headroom_pct()) {
                outcome.error = LaunchError::placement_invalid;
                return outcome;
            }
            break;
        case cbr::Target::gpp:
            if (impl.meta.demand.cpu_load_pct > cpu_.headroom_pct()) {
                outcome.error = LaunchError::placement_invalid;
                return outcome;
            }
            break;
    }

    const TaskId id{next_task_++};
    Task task;
    task.id = id;
    task.impl = ref;
    task.target = plan.target;
    task.state = TaskState::loading;
    task.priority = priority;
    task.demand = impl.meta.demand;
    task.static_power_mw = impl.meta.static_power_mw;
    task.dynamic_power_mw = impl.meta.dynamic_power_mw;
    task.device = plan.device;
    task.slot = plan.slot;

    switch (plan.target) {
        case cbr::Target::fpga:
            fpgas_[plan.device - 2].occupy(plan.slot, id);
            break;
        case cbr::Target::dsp:
            QFA_ASSERT(dsp_->admit(id, impl.meta.demand.dsp_load_pct),
                       "headroom was just checked");
            break;
        case cbr::Target::gpp:
            QFA_ASSERT(cpu_.admit(id, impl.meta.demand.cpu_load_pct),
                       "headroom was just checked");
            break;
    }

    // FLASH fetch, then the (serialised) configuration port.
    const SimTime fetched = events_.now() + repository_.fetch_time(*blob);
    const SimTime active_at = reconfig_.reserve(plan.device, fetched, *blob);
    outcome.active_at = active_at;

    tasks_.emplace(id, task);
    ++stats_.launches;
    events_.schedule(active_at, [this, id] {
        const auto it = tasks_.find(id);
        if (it == tasks_.end() || it->second.state != TaskState::loading) {
            return;  // released or preempted while loading
        }
        it->second.state = TaskState::active;
        power_.task_started(id, it->second.static_power_mw + it->second.dynamic_power_mw,
                            events_.now());
    });

    outcome.task = id;
    return outcome;
}

void Platform::free_resources(const Task& task) {
    switch (task.target) {
        case cbr::Target::fpga:
            (void)fpgas_[task.device - 2].vacate(task.slot);
            break;
        case cbr::Target::dsp:
            if (dsp_) {
                (void)dsp_->remove(task.id);
            }
            break;
        case cbr::Target::gpp:
            (void)cpu_.remove(task.id);
            break;
    }
}

bool Platform::release(TaskId id) {
    const auto it = tasks_.find(id);
    if (it == tasks_.end() || it->second.state == TaskState::finished) {
        return false;
    }
    if (it->second.state == TaskState::active) {
        power_.task_stopped(id, events_.now());
    }
    if (it->second.state != TaskState::preempted) {
        free_resources(it->second);
    }
    it->second.state = TaskState::finished;
    ++stats_.releases;
    return true;
}

bool Platform::preempt(TaskId id) {
    const auto it = tasks_.find(id);
    if (it == tasks_.end() || it->second.state == TaskState::finished ||
        it->second.state == TaskState::preempted) {
        return false;
    }
    if (it->second.state == TaskState::active) {
        power_.task_stopped(id, events_.now());
    }
    free_resources(it->second);
    it->second.state = TaskState::preempted;
    ++stats_.preemptions;
    return true;
}

const Task* Platform::task(TaskId id) const {
    const auto it = tasks_.find(id);
    return it == tasks_.end() ? nullptr : &it->second;
}

}  // namespace qfa::sys
