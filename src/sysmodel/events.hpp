// Discrete-event simulation kernel for the platform model.
//
// The fig. 1 system is inherently event-driven: applications issue function
// calls, reconfigurations complete after bitstream-size-dependent delays,
// tasks finish, QoS renegotiations fire.  This kernel provides the usual
// time-ordered queue with stable FIFO ordering for simultaneous events and
// cancellable handles.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "util/contracts.hpp"

namespace qfa::sys {

/// Simulated time in microseconds.
using SimTime = std::uint64_t;

/// Handle to a scheduled event (for cancellation).
struct EventId {
    std::uint64_t value = 0;
    friend constexpr bool operator==(EventId, EventId) noexcept = default;
};

/// Time-ordered event queue.
class EventQueue {
public:
    /// Schedules `action` at absolute time `at` (>= now).  Events at equal
    /// times run in scheduling order (stable FIFO).
    EventId schedule(SimTime at, std::function<void()> action);

    /// Schedules `action` `delay` after now.
    EventId schedule_in(SimTime delay, std::function<void()> action) {
        return schedule(now_ + delay, std::move(action));
    }

    /// Cancels a pending event; false if it already ran or was cancelled.
    bool cancel(EventId id);

    /// Runs the next event; false when the queue is empty.
    bool step();

    /// Runs all events up to and including time `until`.
    void run_until(SimTime until);

    /// Drains the whole queue (with a safety cap on event count).
    void run_all(std::uint64_t max_events = 10'000'000);

    [[nodiscard]] SimTime now() const noexcept { return now_; }
    [[nodiscard]] std::size_t pending() const noexcept { return events_.size(); }
    [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

private:
    struct Scheduled {
        std::uint64_t id;
        std::function<void()> action;
    };

    // Keyed by (time, sequence) for deterministic ordering.
    std::map<std::pair<SimTime, std::uint64_t>, Scheduled> events_;
    std::map<std::uint64_t, std::pair<SimTime, std::uint64_t>> index_;  ///< id -> key
    SimTime now_ = 0;
    std::uint64_t next_sequence_ = 0;
    std::uint64_t next_id_ = 1;
    std::uint64_t executed_ = 0;
};

}  // namespace qfa::sys
