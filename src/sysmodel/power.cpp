#include "sysmodel/power.hpp"

#include "util/contracts.hpp"

namespace qfa::sys {

PowerModel::PowerModel(std::uint32_t base_mw) : base_mw_(base_mw) {}

void PowerModel::integrate_to(SimTime now) const {
    QFA_EXPECTS(now >= last_sample_, "power samples must be monotone in time");
    energy_mw_us_ += static_cast<double>(current_power_mw()) *
                     static_cast<double>(now - last_sample_);
    last_sample_ = now;
}

void PowerModel::task_started(TaskId task, std::uint32_t power_mw, SimTime now) {
    integrate_to(now);
    draws_[task] = power_mw;
}

void PowerModel::task_stopped(TaskId task, SimTime now) {
    integrate_to(now);
    draws_.erase(task);
}

std::uint32_t PowerModel::current_power_mw() const noexcept {
    std::uint32_t total = base_mw_;
    for (const auto& [task, mw] : draws_) {
        total += mw;
    }
    return total;
}

double PowerModel::energy_uj(SimTime at) const {
    integrate_to(at);
    return energy_mw_us_ / 1000.0;
}

}  // namespace qfa::sys
