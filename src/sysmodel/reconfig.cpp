#include "sysmodel/reconfig.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace qfa::sys {

ReconfigController::ReconfigController(ReconfigTiming timing) : timing_(timing) {
    QFA_EXPECTS(timing_.icap_bytes_per_us > 0.0 && timing_.copy_bytes_per_us > 0.0,
                "configuration bandwidths must be positive");
}

SimTime ReconfigController::programming_time(const ConfigBlob& blob) const {
    const double bandwidth = blob.target == cbr::Target::fpga
                                 ? timing_.icap_bytes_per_us
                                 : timing_.copy_bytes_per_us;
    return timing_.setup_us +
           static_cast<SimTime>(std::ceil(static_cast<double>(blob.bytes) / bandwidth));
}

SimTime ReconfigController::reserve(std::uint16_t device, SimTime now,
                                    const ConfigBlob& blob) {
    const SimTime start = std::max(now, busy_until(device));
    const SimTime duration = programming_time(blob);
    port_free_at_[device] = start + duration;
    ++count_;
    total_busy_ += duration;
    return start + duration;
}

SimTime ReconfigController::busy_until(std::uint16_t device) const {
    const auto it = port_free_at_.find(device);
    return it == port_free_at_.end() ? 0 : it->second;
}

}  // namespace qfa::sys
