// Execution devices of the fig. 1 platform.
//
// The conceived system combines "one or several low-cost reconfigurable
// devices plus dedicated hardware like ASICs or DSPs" with a general-purpose
// CPU.  Three device models:
//
//  * FpgaDevice — partially reconfigurable fabric organised as fixed slots
//    (the module slots of the authors' FPL'04 run-time system [7]); each
//    slot has a resource capacity (slices/BRAMs/multipliers) and holds at
//    most one hardware task.
//  * DspDevice / CpuDevice — processors admitting software tasks by
//    utilisation share (percent), preemptable by priority.
//
// Devices only track occupancy; placement *policy* (which victim to evict,
// which slot to prefer) lives in the scheduler and allocation layers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/deploy.hpp"
#include "sysmodel/task.hpp"

namespace qfa::sys {

/// Identifies a device within the platform.
struct DeviceId {
    std::uint16_t value = 0;
    friend constexpr bool operator==(DeviceId, DeviceId) noexcept = default;
    friend constexpr auto operator<=>(DeviceId, DeviceId) noexcept = default;
};

/// Capacity of one FPGA slot.
struct SlotCapacity {
    std::uint32_t clb_slices = 0;
    std::uint32_t brams = 0;
    std::uint32_t multipliers = 0;

    /// True if `demand` fits this slot.
    [[nodiscard]] constexpr bool fits(const cbr::ResourceDemand& demand) const noexcept {
        return demand.clb_slices <= clb_slices && demand.brams <= brams &&
               demand.multipliers <= multipliers;
    }
};

/// One reconfigurable slot.
struct Slot {
    SlotCapacity capacity;
    std::optional<TaskId> occupant;
    std::uint64_t reconfig_count = 0;  ///< times this slot was reprogrammed

    [[nodiscard]] bool free() const noexcept { return !occupant.has_value(); }
};

/// Partially reconfigurable FPGA with fixed module slots.
class FpgaDevice {
public:
    FpgaDevice(DeviceId id, std::string name, std::vector<SlotCapacity> slots);

    [[nodiscard]] DeviceId id() const noexcept { return id_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] std::size_t slot_count() const noexcept { return slots_.size(); }
    [[nodiscard]] const Slot& slot(std::size_t index) const;

    /// Index of the first free slot fitting `demand`, if any.
    [[nodiscard]] std::optional<std::size_t> find_free_slot(
        const cbr::ResourceDemand& demand) const;

    /// Indices of all (free or occupied) slots that could fit `demand` —
    /// occupied ones are preemption candidates.
    [[nodiscard]] std::vector<std::size_t> fitting_slots(
        const cbr::ResourceDemand& demand) const;

    /// Installs a task into a free slot.
    void occupy(std::size_t slot_index, TaskId task);

    /// Clears a slot; returns the evicted occupant (if any).
    std::optional<TaskId> vacate(std::size_t slot_index);

    /// Fraction of slots occupied, in [0, 1].
    [[nodiscard]] double occupancy() const noexcept;

private:
    DeviceId id_;
    std::string name_;
    std::vector<Slot> slots_;
};

/// Processor kind for software-capable devices.
enum class ProcessorKind : std::uint8_t { cpu, dsp };

/// A utilisation-shared processor (DSP or general-purpose CPU).
class ProcessorDevice {
public:
    ProcessorDevice(DeviceId id, std::string name, ProcessorKind kind,
                    std::uint32_t capacity_pct = 100);

    [[nodiscard]] DeviceId id() const noexcept { return id_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] ProcessorKind kind() const noexcept { return kind_; }

    /// Remaining admissible load in percent.
    [[nodiscard]] std::uint32_t headroom_pct() const noexcept;

    /// Admits a task consuming `load_pct`; false when it would overload.
    bool admit(TaskId task, std::uint32_t load_pct);

    /// Removes a task; false when it was not admitted here.
    bool remove(TaskId task);

    /// Currently admitted tasks (with their loads).
    [[nodiscard]] const std::vector<std::pair<TaskId, std::uint32_t>>& admitted()
        const noexcept {
        return admitted_;
    }

    /// Utilisation in [0, 1].
    [[nodiscard]] double utilisation() const noexcept;

private:
    DeviceId id_;
    std::string name_;
    ProcessorKind kind_;
    std::uint32_t capacity_pct_;
    std::uint32_t used_pct_ = 0;
    std::vector<std::pair<TaskId, std::uint32_t>> admitted_;
};

}  // namespace qfa::sys
