#include "workload/requests.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace qfa::wl {

cbr::TypeId random_type(const cbr::CaseBase& cb, util::Rng& rng) {
    QFA_EXPECTS(!cb.empty(), "case base must not be empty");
    const auto types = cb.types();
    return types[rng.index(types.size())].id;
}

GeneratedRequest generate_request(const cbr::CaseBase& cb, const cbr::BoundsTable& bounds,
                                  cbr::TypeId type, util::Rng& rng,
                                  const RequestGenConfig& config) {
    QFA_EXPECTS(config.keep_prob > 0.0 && config.keep_prob <= 1.0,
                "keep probability must be in (0, 1]");
    QFA_EXPECTS(config.tightness >= 0.0 && config.tightness <= 1.0,
                "tightness must be in [0, 1]");
    const cbr::FunctionType* ft = cb.find_type(type);
    QFA_EXPECTS(ft != nullptr && !ft->impls.empty(),
                "request generation needs an implemented type");

    const cbr::Implementation& target = ft->impls[rng.index(ft->impls.size())];

    std::vector<cbr::RequestAttribute> constraints;
    for (const cbr::Attribute& attr : target.attributes) {
        if (!constraints.empty() && !rng.bernoulli(config.keep_prob)) {
            continue;
        }
        // Jitter the requested value within the design range.
        const auto b = bounds.find(attr.id);
        double value = attr.value;
        if (config.tightness > 0.0 && b) {
            const double range = static_cast<double>(b->dmax());
            value += rng.uniform_real(-1.0, 1.0) * config.tightness * range;
            value = std::clamp(value, static_cast<double>(b->lower),
                               static_cast<double>(b->upper));
        }
        const double weight = 1.0 + config.weight_skew * rng.uniform_real(0.0, 4.0);
        constraints.push_back(
            {attr.id, static_cast<cbr::AttrValue>(std::lround(value)), weight});
    }
    QFA_ASSERT(!constraints.empty(), "target variants always have attributes");

    return GeneratedRequest{cbr::Request(type, std::move(constraints)), type, target.id};
}

std::vector<GeneratedRequest> generate_request_batch(const cbr::CaseBase& cb,
                                                     const cbr::BoundsTable& bounds,
                                                     std::size_t count, util::Rng& rng,
                                                     const RequestGenConfig& config) {
    std::vector<cbr::TypeId> implemented;
    for (const cbr::FunctionType& type : cb.types()) {
        if (!type.impls.empty()) {
            implemented.push_back(type.id);
        }
    }
    QFA_EXPECTS(!implemented.empty(), "batch generation needs an implemented type");

    std::vector<GeneratedRequest> batch;
    batch.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const cbr::TypeId type = implemented[rng.index(implemented.size())];
        batch.push_back(generate_request(cb, bounds, type, rng, config));
    }
    return batch;
}

std::vector<std::vector<GeneratedRequest>> generate_request_streams(
    const cbr::CaseBase& cb, const cbr::BoundsTable& bounds, std::size_t streams,
    std::size_t per_stream, util::Rng& rng, const RequestGenConfig& config) {
    QFA_EXPECTS(streams >= 1, "stream generation needs at least one stream");
    std::vector<std::vector<GeneratedRequest>> out;
    out.reserve(streams);
    for (std::size_t i = 0; i < streams; ++i) {
        util::Rng child = rng.split();
        out.push_back(generate_request_batch(cb, bounds, per_stream, child, config));
    }
    return out;
}

}  // namespace qfa::wl
