#include "workload/requests.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace qfa::wl {

cbr::TypeId random_type(const cbr::CaseBase& cb, util::Rng& rng) {
    QFA_EXPECTS(!cb.empty(), "case base must not be empty");
    const auto types = cb.types();
    return types[rng.index(types.size())].id;
}

GeneratedRequest generate_request(const cbr::CaseBase& cb, const cbr::BoundsTable& bounds,
                                  cbr::TypeId type, util::Rng& rng,
                                  const RequestGenConfig& config) {
    QFA_EXPECTS(config.keep_prob > 0.0 && config.keep_prob <= 1.0,
                "keep probability must be in (0, 1]");
    QFA_EXPECTS(config.tightness >= 0.0 && config.tightness <= 1.0,
                "tightness must be in [0, 1]");
    const cbr::FunctionType* ft = cb.find_type(type);
    QFA_EXPECTS(ft != nullptr && !ft->impls.empty(),
                "request generation needs an implemented type");

    const cbr::Implementation& target = ft->impls[rng.index(ft->impls.size())];

    std::vector<cbr::RequestAttribute> constraints;
    for (const cbr::Attribute& attr : target.attributes) {
        if (!constraints.empty() && !rng.bernoulli(config.keep_prob)) {
            continue;
        }
        // Jitter the requested value within the design range.
        const auto b = bounds.find(attr.id);
        double value = attr.value;
        if (config.tightness > 0.0 && b) {
            const double range = static_cast<double>(b->dmax());
            value += rng.uniform_real(-1.0, 1.0) * config.tightness * range;
            value = std::clamp(value, static_cast<double>(b->lower),
                               static_cast<double>(b->upper));
        }
        const double weight = 1.0 + config.weight_skew * rng.uniform_real(0.0, 4.0);
        constraints.push_back(
            {attr.id, static_cast<cbr::AttrValue>(std::lround(value)), weight});
    }
    QFA_ASSERT(!constraints.empty(), "target variants always have attributes");

    return GeneratedRequest{cbr::Request(type, std::move(constraints)), type, target.id};
}

RequestStreamBuilder::RequestStreamBuilder(const cbr::CaseBase& cb,
                                           const cbr::BoundsTable& bounds,
                                           RequestGenConfig config)
    : cb_(&cb), bounds_(&bounds), config_(config) {
    for (const cbr::FunctionType& type : cb.types()) {
        if (!type.impls.empty()) {
            implemented_.push_back(type.id);
        }
    }
    QFA_EXPECTS(!implemented_.empty(), "request generation needs an implemented type");
}

GeneratedRequest RequestStreamBuilder::one(util::Rng& rng) const {
    // Draw order (type index, then the request's own draws) is pinned: it
    // is what generate_request_batch has always consumed per item.
    const cbr::TypeId type = implemented_[rng.index(implemented_.size())];
    return generate_request(*cb_, *bounds_, type, rng, config_);
}

GeneratedRequest RequestStreamBuilder::at_rank(std::size_t rank, util::Rng& rng) const {
    QFA_EXPECTS(rank < implemented_.size(), "Zipf rank must index an implemented type");
    return generate_request(*cb_, *bounds_, implemented_[rank], rng, config_);
}

std::vector<GeneratedRequest> RequestStreamBuilder::batch(std::size_t count,
                                                          util::Rng& rng) const {
    std::vector<GeneratedRequest> batch;
    batch.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        batch.push_back(one(rng));
    }
    return batch;
}

std::vector<std::vector<GeneratedRequest>> RequestStreamBuilder::streams(
    std::size_t streams, std::size_t per_stream, util::Rng& rng) const {
    QFA_EXPECTS(streams >= 1, "stream generation needs at least one stream");
    std::vector<std::vector<GeneratedRequest>> out;
    out.reserve(streams);
    for (std::size_t i = 0; i < streams; ++i) {
        util::Rng child = rng.split();
        out.push_back(batch(per_stream, child));
    }
    return out;
}

std::vector<GeneratedRequest> generate_request_batch(const cbr::CaseBase& cb,
                                                     const cbr::BoundsTable& bounds,
                                                     std::size_t count, util::Rng& rng,
                                                     const RequestGenConfig& config) {
    return RequestStreamBuilder(cb, bounds, config).batch(count, rng);
}

std::vector<std::vector<GeneratedRequest>> generate_request_streams(
    const cbr::CaseBase& cb, const cbr::BoundsTable& bounds, std::size_t streams,
    std::size_t per_stream, util::Rng& rng, const RequestGenConfig& config) {
    return RequestStreamBuilder(cb, bounds, config).streams(streams, per_stream, rng);
}

}  // namespace qfa::wl
