// Timed application scenarios — the fig. 1 application mix, synthetically.
//
// Four archetypes mirror the applications drawn in fig. 1 (MP3 player,
// video, automotive ECU, cruise control).  Each issues Poisson-arriving
// function calls over its hot set of function types (Zipf popularity,
// repeated-call probability for bypass-token realism), holds granted
// functions for an exponential time and releases them.  The driver runs
// everything on the platform's event queue and reports aggregate outcome
// statistics — the E10/E11 measurement harness.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "alloc/manager.hpp"
#include "sysmodel/system.hpp"
#include "workload/requests.hpp"
#include "workload/zipf.hpp"

namespace qfa::wl {

/// Application archetypes (fig. 1).
enum class AppKind : std::uint8_t { mp3_player, video, automotive_ecu, cruise_control };

[[nodiscard]] const char* app_kind_name(AppKind kind) noexcept;

/// Behavioural profile of one application.
struct AppProfile {
    AppKind kind = AppKind::mp3_player;
    alloc::AppId app = 0;
    std::vector<cbr::TypeId> hot_types;   ///< its function working set
    double zipf_s = 1.0;                  ///< popularity skew over hot_types
    double mean_interarrival_us = 20'000; ///< Poisson request arrivals
    double mean_holding_us = 80'000;      ///< exponential function lifetime
    double repeat_prob = 0.6;             ///< reuse the previous request
    sys::Priority priority = 10;
    double threshold = 0.0;
    RequestGenConfig request_gen{};
};

/// Canonical profile for an archetype (hot types drawn from the catalogue).
[[nodiscard]] AppProfile make_profile(AppKind kind, alloc::AppId app,
                                      const cbr::CaseBase& cb, util::Rng& rng,
                                      std::size_t hot_set_size = 3);

/// Scenario-wide parameters.
struct ScenarioConfig {
    sys::SimTime duration_us = 1'000'000;  ///< 1 simulated second
    std::uint64_t seed = 42;
};

/// Aggregate outcome of a scenario run.
struct ScenarioReport {
    std::uint64_t requests = 0;
    std::uint64_t grants = 0;
    std::uint64_t bypass_grants = 0;
    std::uint64_t rejections = 0;
    std::uint64_t counter_offers_accepted = 0;
    std::uint64_t preemptions = 0;
    double grant_rate = 0.0;
    double mean_similarity = 0.0;        ///< over grants
    double mean_activation_us = 0.0;     ///< request -> function active
    double energy_mj = 0.0;              ///< platform energy over the run
    double mean_negotiation_rounds = 0.0;

    [[nodiscard]] std::string summary() const;
};

/// Event-driven scenario executor.
class ScenarioDriver {
public:
    /// All referenced objects must outlive the driver.
    ScenarioDriver(sys::Platform& platform, alloc::AllocationManager& manager,
                   const cbr::CaseBase& cb, const cbr::BoundsTable& bounds,
                   std::vector<AppProfile> apps, ScenarioConfig config);

    /// Runs the scenario to completion and reports.
    [[nodiscard]] ScenarioReport run();

private:
    struct AppState {
        AppProfile profile;
        ZipfSampler popularity;
        util::Rng rng;
        /// Last issued request per hot type (repeated-call pool).
        std::unordered_map<std::uint16_t, cbr::Request> last_request;
    };

    void schedule_next_arrival(std::size_t app_index);
    void handle_arrival(std::size_t app_index);

    sys::Platform* platform_;
    alloc::AllocationManager* manager_;
    const cbr::CaseBase* cb_;
    const cbr::BoundsTable* bounds_;
    ScenarioConfig config_;
    std::vector<AppState> apps_;

    // accumulators
    std::uint64_t requests_ = 0;
    std::uint64_t grants_ = 0;
    std::uint64_t rejections_ = 0;
    std::uint64_t offers_accepted_ = 0;
    double similarity_sum_ = 0.0;
    double activation_sum_us_ = 0.0;
    double rounds_sum_ = 0.0;
};

}  // namespace qfa::wl
