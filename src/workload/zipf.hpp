// Zipf-distributed sampling for hot-function popularity.
//
// Repeated function calls dominate real request streams (that is what makes
// the §3 bypass tokens pay off); a Zipf law over the function set is the
// standard synthetic stand-in.  P(rank k) ∝ 1 / k^s.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace qfa::wl {

/// Samples ranks 0..n-1 with Zipf(s) probabilities.
class ZipfSampler {
public:
    /// `n` ranks, exponent `s` >= 0 (s = 0 degenerates to uniform).
    ZipfSampler(std::size_t n, double s);

    /// Draws one rank (0 = most popular).
    [[nodiscard]] std::size_t sample(util::Rng& rng) const;

    /// Probability mass of one rank.
    [[nodiscard]] double probability(std::size_t rank) const;

    [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

private:
    std::vector<double> cdf_;
};

}  // namespace qfa::wl
