// Synthetic request generation.
//
// Requests are produced by perturbing a real catalogue variant: pick a
// "target" implementation, keep a random subset of its attributes (partial
// requests are first-class, §3), and jitter the values by a tightness
// factor.  Because the intended variant is known, retrieval *quality* can
// be measured: does the retriever find the variant the request was aimed
// at (or something at least as similar)?
#pragma once

#include <optional>

#include "core/bounds.hpp"
#include "core/case_base.hpp"
#include "core/request.hpp"
#include "util/rng.hpp"

namespace qfa::wl {

/// Request-generation knobs.
struct RequestGenConfig {
    /// Probability of keeping each attribute of the target variant
    /// (at least one is always kept).
    double keep_prob = 0.7;
    /// Relative value jitter: 0 = ask exactly for the variant's values,
    /// 0.2 = up to ±20 % of the attribute's design range.
    double tightness = 0.1;
    /// Weight skew: 0 = equal weights; larger = more uneven.
    double weight_skew = 0.5;
};

/// A generated request together with the variant it was aimed at.
struct GeneratedRequest {
    cbr::Request request;
    cbr::TypeId type;
    cbr::ImplId intended;  ///< the perturbation source
};

/// Generates one request aimed at a random implementation of `type`.
/// Requires the type to exist and have implementations.
[[nodiscard]] GeneratedRequest generate_request(const cbr::CaseBase& cb,
                                                const cbr::BoundsTable& bounds,
                                                cbr::TypeId type, util::Rng& rng,
                                                const RequestGenConfig& config = {});

/// Generates a batch of requests aimed at random implemented types — the
/// input shape for Retriever::retrieve_batch under heavy request traffic
/// (benches, property tests, storm drivers).  Deterministic in (config,
/// rng state); requires at least one type with implementations.
[[nodiscard]] std::vector<GeneratedRequest> generate_request_batch(
    const cbr::CaseBase& cb, const cbr::BoundsTable& bounds, std::size_t count,
    util::Rng& rng, const RequestGenConfig& config = {});

/// Partitions a request workload into `streams` per-producer sub-streams —
/// the input shape for the serve engine's concurrent submitters (stress
/// tests, multi-application benches).  Stream i draws from its own
/// Rng::split child, so its contents are a pure function of (config, rng
/// state, i): reordering or interleaving producer threads cannot change
/// what any stream asks for.  Requires streams >= 1 and at least one
/// implemented type.
[[nodiscard]] std::vector<std::vector<GeneratedRequest>> generate_request_streams(
    const cbr::CaseBase& cb, const cbr::BoundsTable& bounds, std::size_t streams,
    std::size_t per_stream, util::Rng& rng, const RequestGenConfig& config = {});

/// Uniformly random type id present in the case base (requires non-empty).
[[nodiscard]] cbr::TypeId random_type(const cbr::CaseBase& cb, util::Rng& rng);

}  // namespace qfa::wl
