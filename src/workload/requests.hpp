// Synthetic request generation.
//
// Requests are produced by perturbing a real catalogue variant: pick a
// "target" implementation, keep a random subset of its attributes (partial
// requests are first-class, §3), and jitter the values by a tightness
// factor.  Because the intended variant is known, retrieval *quality* can
// be measured: does the retriever find the variant the request was aimed
// at (or something at least as similar)?
#pragma once

#include <optional>

#include "core/bounds.hpp"
#include "core/case_base.hpp"
#include "core/request.hpp"
#include "util/rng.hpp"

namespace qfa::wl {

/// Request-generation knobs.
struct RequestGenConfig {
    /// Probability of keeping each attribute of the target variant
    /// (at least one is always kept).
    double keep_prob = 0.7;
    /// Relative value jitter: 0 = ask exactly for the variant's values,
    /// 0.2 = up to ±20 % of the attribute's design range.
    double tightness = 0.1;
    /// Weight skew: 0 = equal weights; larger = more uneven.
    double weight_skew = 0.5;
};

/// A generated request together with the variant it was aimed at.
struct GeneratedRequest {
    cbr::Request request;
    cbr::TypeId type;
    cbr::ImplId intended;  ///< the perturbation source
};

/// The ONE seeded request factory behind every generator in this header
/// (and the open-loop driver, workload/openloop.hpp).  Binds catalogue,
/// bounds and config once, precomputes the implemented-type list — the only
/// derived state the generators share — and then draws purely from the Rng
/// the caller passes: a builder is stateless across calls, so any schedule
/// built through it is a byte-for-byte function of (catalogue, config, rng
/// state), regardless of which entry point or how many builders produced
/// it.  The free functions below construct one per call and delegate; their
/// draw sequences are pinned identical to the pre-builder code.
class RequestStreamBuilder {
public:
    /// Binds the inputs; `cb` and `bounds` must outlive the builder.
    /// Requires at least one implemented type.
    RequestStreamBuilder(const cbr::CaseBase& cb, const cbr::BoundsTable& bounds,
                         RequestGenConfig config = {});

    /// One request aimed at a uniformly drawn implemented type.
    [[nodiscard]] GeneratedRequest one(util::Rng& rng) const;

    /// One request aimed at the implemented type of Zipf `rank` (0 = most
    /// popular; ranks index the implemented-type list in catalogue order).
    /// Pair with a ZipfSampler over implemented_types().size() for skewed
    /// popularity — the open-loop tenants' hot-function traffic.
    [[nodiscard]] GeneratedRequest at_rank(std::size_t rank, util::Rng& rng) const;

    /// `count` requests at uniformly drawn implemented types
    /// (generate_request_batch's contract).
    [[nodiscard]] std::vector<GeneratedRequest> batch(std::size_t count,
                                                      util::Rng& rng) const;

    /// `streams` independent per-producer sub-streams, stream i drawn from
    /// rng.split() child i (generate_request_streams' contract).
    [[nodiscard]] std::vector<std::vector<GeneratedRequest>> streams(
        std::size_t streams, std::size_t per_stream, util::Rng& rng) const;

    /// The types requests are aimed at, in catalogue order (Zipf rank i =
    /// element i).
    [[nodiscard]] const std::vector<cbr::TypeId>& implemented_types() const noexcept {
        return implemented_;
    }

private:
    const cbr::CaseBase* cb_;
    const cbr::BoundsTable* bounds_;
    RequestGenConfig config_;
    std::vector<cbr::TypeId> implemented_;
};

/// Generates one request aimed at a random implementation of `type`.
/// Requires the type to exist and have implementations.
[[nodiscard]] GeneratedRequest generate_request(const cbr::CaseBase& cb,
                                                const cbr::BoundsTable& bounds,
                                                cbr::TypeId type, util::Rng& rng,
                                                const RequestGenConfig& config = {});

/// Generates a batch of requests aimed at random implemented types — the
/// input shape for Retriever::retrieve_batch under heavy request traffic
/// (benches, property tests, storm drivers).  Deterministic in (config,
/// rng state); requires at least one type with implementations.
[[nodiscard]] std::vector<GeneratedRequest> generate_request_batch(
    const cbr::CaseBase& cb, const cbr::BoundsTable& bounds, std::size_t count,
    util::Rng& rng, const RequestGenConfig& config = {});

/// Partitions a request workload into `streams` per-producer sub-streams —
/// the input shape for the serve engine's concurrent submitters (stress
/// tests, multi-application benches).  Stream i draws from its own
/// Rng::split child, so its contents are a pure function of (config, rng
/// state, i): reordering or interleaving producer threads cannot change
/// what any stream asks for.  Requires streams >= 1 and at least one
/// implemented type.
[[nodiscard]] std::vector<std::vector<GeneratedRequest>> generate_request_streams(
    const cbr::CaseBase& cb, const cbr::BoundsTable& bounds, std::size_t streams,
    std::size_t per_stream, util::Rng& rng, const RequestGenConfig& config = {});

/// Uniformly random type id present in the case base (requires non-empty).
[[nodiscard]] cbr::TypeId random_type(const cbr::CaseBase& cb, util::Rng& rng);

}  // namespace qfa::wl
