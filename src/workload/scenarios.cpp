#include "workload/scenarios.hpp"

#include <algorithm>
#include <cmath>

#include "alloc/negotiation.hpp"
#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace qfa::wl {

const char* app_kind_name(AppKind kind) noexcept {
    switch (kind) {
        case AppKind::mp3_player: return "mp3-player";
        case AppKind::video: return "video";
        case AppKind::automotive_ecu: return "automotive-ecu";
        case AppKind::cruise_control: return "cruise-control";
    }
    return "?";
}

AppProfile make_profile(AppKind kind, alloc::AppId app, const cbr::CaseBase& cb,
                        util::Rng& rng, std::size_t hot_set_size) {
    QFA_EXPECTS(!cb.empty(), "profiles need a catalogue");
    AppProfile profile;
    profile.kind = kind;
    profile.app = app;

    // Draw a hot set of distinct types.
    const auto types = cb.types();
    std::vector<std::size_t> indices(types.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
        indices[i] = i;
    }
    rng.shuffle(indices);
    const std::size_t count = std::min(hot_set_size, indices.size());
    for (std::size_t i = 0; i < count; ++i) {
        profile.hot_types.push_back(types[indices[i]].id);
    }

    switch (kind) {
        case AppKind::mp3_player:
            // Steady soft-real-time stream: frequent repeated calls.
            profile.mean_interarrival_us = 25'000;
            profile.mean_holding_us = 120'000;
            profile.repeat_prob = 0.85;
            profile.priority = 8;
            profile.zipf_s = 1.2;
            break;
        case AppKind::video:
            // Heavier, bursty, quality-hungry.
            profile.mean_interarrival_us = 15'000;
            profile.mean_holding_us = 60'000;
            profile.repeat_prob = 0.6;
            profile.priority = 12;
            profile.threshold = 0.3;
            profile.zipf_s = 0.9;
            profile.request_gen.tightness = 0.05;
            break;
        case AppKind::automotive_ecu:
            // Control tasks: high priority, diverse requests.
            profile.mean_interarrival_us = 40'000;
            profile.mean_holding_us = 200'000;
            profile.repeat_prob = 0.4;
            profile.priority = 20;
            profile.zipf_s = 0.5;
            break;
        case AppKind::cruise_control:
            // Sporadic but critical.
            profile.mean_interarrival_us = 80'000;
            profile.mean_holding_us = 300'000;
            profile.repeat_prob = 0.7;
            profile.priority = 25;
            profile.zipf_s = 1.5;
            break;
    }
    return profile;
}

std::string ScenarioReport::summary() const {
    std::string out;
    out += "requests=" + std::to_string(requests);
    out += " grants=" + std::to_string(grants);
    out += " (bypass=" + std::to_string(bypass_grants) + ")";
    out += " rejects=" + std::to_string(rejections);
    out += " preemptions=" + std::to_string(preemptions);
    out += " grant_rate=" + util::to_fixed(grant_rate, 3);
    out += " mean_S=" + util::to_fixed(mean_similarity, 3);
    out += " mean_act_us=" + util::to_fixed(mean_activation_us, 1);
    out += " energy_mJ=" + util::to_fixed(energy_mj, 2);
    return out;
}

ScenarioDriver::ScenarioDriver(sys::Platform& platform, alloc::AllocationManager& manager,
                               const cbr::CaseBase& cb, const cbr::BoundsTable& bounds,
                               std::vector<AppProfile> apps, ScenarioConfig config)
    : platform_(&platform),
      manager_(&manager),
      cb_(&cb),
      bounds_(&bounds),
      config_(config) {
    QFA_EXPECTS(!apps.empty(), "a scenario needs at least one application");
    util::Rng seeder(config_.seed);
    for (AppProfile& profile : apps) {
        QFA_EXPECTS(!profile.hot_types.empty(), "application has no hot types");
        ZipfSampler popularity(profile.hot_types.size(), profile.zipf_s);
        apps_.push_back(
            AppState{std::move(profile), std::move(popularity), seeder.split(), {}});
    }
}

void ScenarioDriver::schedule_next_arrival(std::size_t app_index) {
    AppState& app = apps_[app_index];
    const double gap = app.rng.exponential(1.0 / app.profile.mean_interarrival_us);
    const sys::SimTime at =
        platform_->events().now() + std::max<sys::SimTime>(1, (sys::SimTime)gap);
    if (at > config_.duration_us) {
        return;  // scenario over for this app
    }
    platform_->events().schedule(at, [this, app_index] { handle_arrival(app_index); });
}

void ScenarioDriver::handle_arrival(std::size_t app_index) {
    AppState& app = apps_[app_index];
    const AppProfile& profile = app.profile;

    // Pick a (Zipf-popular) type; maybe repeat the previous request for it.
    const std::size_t rank = app.popularity.sample(app.rng);
    const cbr::TypeId type = profile.hot_types[rank];
    std::optional<cbr::Request> request;
    const auto cached = app.last_request.find(type.value());
    if (cached != app.last_request.end() && app.rng.bernoulli(profile.repeat_prob)) {
        request = cached->second;
    } else {
        GeneratedRequest generated =
            generate_request(*cb_, *bounds_, type, app.rng, profile.request_gen);
        request = std::move(generated.request);
        app.last_request.insert_or_assign(type.value(), *request);
    }

    ++requests_;
    alloc::AllocRequest alloc_request{profile.app,       *request, profile.priority,
                                      profile.threshold, 4,        true,
                                      /*tenant=*/0,      /*deadline=*/{}};
    const sys::SimTime issued_at = platform_->events().now();
    const alloc::NegotiationResult outcome = alloc::negotiate(*manager_, alloc_request);
    rounds_sum_ += static_cast<double>(outcome.rounds);

    if (outcome.granted()) {
        ++grants_;
        similarity_sum_ += outcome.grant->similarity;
        activation_sum_us_ +=
            static_cast<double>(outcome.grant->active_at - issued_at);

        // Hold the function, then release it.
        const double hold = app.rng.exponential(1.0 / profile.mean_holding_us);
        const sys::TaskId task = outcome.grant->task;
        const sys::SimTime release_at =
            std::max(outcome.grant->active_at,
                     issued_at + std::max<sys::SimTime>(1, (sys::SimTime)hold));
        platform_->events().schedule(release_at,
                                     [this, task] { (void)manager_->release(task); });
    } else {
        ++rejections_;
    }

    schedule_next_arrival(app_index);
}

ScenarioReport ScenarioDriver::run() {
    for (std::size_t i = 0; i < apps_.size(); ++i) {
        schedule_next_arrival(i);
    }
    platform_->events().run_all();

    ScenarioReport report;
    report.requests = requests_;
    report.grants = grants_;
    report.bypass_grants = manager_->stats().bypass_grants;
    report.rejections = rejections_;
    report.counter_offers_accepted = manager_->stats().offers_accepted;
    report.preemptions = manager_->stats().preemptions;
    report.grant_rate = requests_ == 0 ? 0.0
                                       : static_cast<double>(grants_) /
                                             static_cast<double>(requests_);
    report.mean_similarity =
        grants_ == 0 ? 0.0 : similarity_sum_ / static_cast<double>(grants_);
    report.mean_activation_us =
        grants_ == 0 ? 0.0 : activation_sum_us_ / static_cast<double>(grants_);
    report.energy_mj =
        platform_->power().energy_uj(platform_->events().now()) / 1000.0;
    report.mean_negotiation_rounds =
        requests_ == 0 ? 0.0 : rounds_sum_ / static_cast<double>(requests_);
    return report;
}

}  // namespace qfa::wl
