#include "workload/openloop.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <thread>
#include <utility>

#include "serve/engine.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace qfa::wl {

namespace {

using steady = std::chrono::steady_clock;

double to_seconds(steady::duration d) {
    return std::chrono::duration<double>(d).count();
}

steady::duration from_seconds(double s) {
    return std::chrono::duration_cast<steady::duration>(std::chrono::duration<double>(s));
}

/// Rate multiplier at schedule offset `t` seconds: `factor` inside each
/// burst window, 1 outside.
double burst_factor_at(const BurstConfig& burst, double t) {
    if (burst.factor == 1.0 || burst.length.count() <= 0) {
        return 1.0;
    }
    const double period = to_seconds(burst.period);
    if (period <= 0.0) {
        return 1.0;
    }
    return std::fmod(t, period) < to_seconds(burst.length) ? burst.factor : 1.0;
}

/// Nearest-rank percentile over an ASCENDING latency list (non-empty).
steady::duration percentile(const std::vector<steady::duration>& sorted, double q) {
    const std::size_t rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size()));
    return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

ArrivalSchedule build_schedule(const cbr::CaseBase& cb, const cbr::BoundsTable& bounds,
                               std::vector<OpenLoopTenant> tenants,
                               const OpenLoopConfig& config) {
    QFA_EXPECTS(!tenants.empty(), "open-loop traffic needs at least one tenant");
    QFA_EXPECTS(config.duration.count() > 0, "open-loop duration must be positive");
    util::Rng root(config.seed);
    ArrivalSchedule schedule;
    schedule.tenants = std::move(tenants);
    const double horizon = to_seconds(config.duration);
    // One Rng child per tenant IN TENANT ORDER: a tenant's whole sub-stream
    // (inter-arrival gaps, Zipf ranks, request perturbations) is a pure
    // function of (seed, tenant position) — adding a tenant at the end
    // never changes the earlier tenants' tapes.
    for (std::size_t t = 0; t < schedule.tenants.size(); ++t) {
        const OpenLoopTenant& tenant = schedule.tenants[t];
        QFA_EXPECTS(tenant.arrival_rate_hz > 0.0, "tenant arrival rate must be positive");
        util::Rng rng = root.split();
        const RequestStreamBuilder builder(cb, bounds, tenant.request_gen);
        const std::size_t type_count = builder.implemented_types().size();
        const ZipfSampler zipf(type_count, tenant.zipf_s);
        // Explicit hot/cold split (the stealing bench's skew knob): live
        // only when both knobs are positive AND the split is proper — a
        // hot set covering every type has no cold remainder and degrades
        // to the plain draw.
        const std::size_t hot_count =
            tenant.hot_type_fraction > 0.0 && tenant.hot_traffic_share > 0.0
                ? std::min(type_count,
                           static_cast<std::size_t>(std::ceil(
                               tenant.hot_type_fraction *
                               static_cast<double>(type_count))))
                : 0;
        const bool hot_cold = hot_count > 0 && hot_count < type_count;
        // Inhomogeneous Poisson process: exponential gaps at the burst-
        // scaled instantaneous rate (piecewise-constant thinning).
        double now = 0.0;
        for (;;) {
            const double rate = tenant.arrival_rate_hz * burst_factor_at(config.burst, now);
            now += rng.exponential(rate);
            if (now >= horizon) {
                break;
            }
            // Popularity rank first, then the request's own draws — one
            // fixed consumption order per arrival.  Hot/cold mode draws
            // bernoulli(share) then a uniform index within the chosen set
            // (hot = the first hot_count ranks); otherwise the Zipf draw.
            std::size_t rank;
            if (hot_cold) {
                rank = rng.bernoulli(tenant.hot_traffic_share)
                           ? rng.index(hot_count)
                           : hot_count + rng.index(type_count - hot_count);
            } else {
                rank = zipf.sample(rng);
            }
            schedule.arrivals.push_back(
                Arrival{from_seconds(now), t, builder.at_rank(rank, rng)});
        }
    }
    // Merge the per-tenant tapes into one arrival-ordered tape.  stable_sort
    // keeps equal-timestamp arrivals in tenant order — full determinism.
    std::stable_sort(schedule.arrivals.begin(), schedule.arrivals.end(),
                     [](const Arrival& a, const Arrival& b) { return a.at < b.at; });
    return schedule;
}

OpenLoopReport run_open_loop(serve::Engine& engine, const ArrivalSchedule& schedule,
                             const OpenLoopConfig& config) {
    const std::size_t n = schedule.arrivals.size();
    OpenLoopReport report;
    report.records.resize(n);
    report.tenants.resize(schedule.tenants.size());
    for (std::size_t t = 0; t < schedule.tenants.size(); ++t) {
        report.tenants[t].tenant = schedule.tenants[t].tenant;
    }
    if (n == 0) {
        return report;
    }

    // Per-arrival slots, each written by exactly one thread at a time:
    // producers fill futures/submit_at for their own arrivals, workers
    // stamp completed_at (read only after the future resolves — the
    // promise's happens-before covers the stamp).
    std::vector<std::future<cbr::RetrievalResult>> futures(n);
    std::vector<steady::time_point> completed_at(n);
    std::vector<steady::time_point> submit_at(n);
    std::vector<serve::AdmissionStatus> admission(n, serve::AdmissionStatus::shutting_down);

    // Partition the tape per tenant; each tenant gets one producer thread
    // replaying its own arrivals in schedule order.
    std::vector<std::vector<std::size_t>> owned(schedule.tenants.size());
    for (std::size_t i = 0; i < n; ++i) {
        owned[schedule.arrivals[i].tenant_index].push_back(i);
    }

    // Start barrier: every producer parks until all of them exist, then the
    // replay clock starts for everyone at once.  Without it, thread-creation
    // skew lets the first tenant flood (or pace) its whole tape before the
    // last tenant's thread has even started — which reads as per-tenant
    // starvation the engine never caused.
    std::promise<steady::time_point> go;
    std::shared_future<steady::time_point> start_signal = go.get_future().share();
    std::atomic<std::size_t> ready{0};
    std::vector<std::thread> producers;
    producers.reserve(schedule.tenants.size());
    for (std::size_t t = 0; t < schedule.tenants.size(); ++t) {
        producers.emplace_back([&, t, start_signal] {
            ready.fetch_add(1, std::memory_order_release);
            const steady::time_point start = start_signal.get();
            const OpenLoopTenant& tenant = schedule.tenants[t];
            for (const std::size_t i : owned[t]) {
                const Arrival& arrival = schedule.arrivals[i];
                const steady::time_point scheduled = start + arrival.at;
                if (config.paced) {
                    std::this_thread::sleep_until(scheduled);
                }
                const steady::time_point submitted = steady::now();
                // Latency clock: the *scheduled* arrival when pacing (a
                // late producer is the system's fault — coordinated
                // omission), the actual submission when flooding (there is
                // no meaningful schedule under a flood).
                submit_at[i] = config.paced ? scheduled : submitted;
                serve::JobClass cls;
                cls.tenant = tenant.tenant;
                cls.priority = tenant.priority;
                if (tenant.relative_deadline.has_value()) {
                    cls.deadline = submit_at[i] + *tenant.relative_deadline;
                }
                cls.completed_at = &completed_at[i];
                serve::AdmissionResult result =
                    engine.try_submit(arrival.generated.request, config.options, cls);
                admission[i] = result.status;
                if (result.admitted()) {
                    futures[i] = std::move(result.future);
                }
                if (!config.paced) {
                    // Flood mode rotates producers after every submission.
                    // Floods finish in milliseconds — shorter than one
                    // scheduler quantum — so on few-core hosts an unyielding
                    // producer submits its whole tape alone, and the
                    // resulting per-tenant skew is the *generator's*
                    // scheduling artifact, not the engine's admission
                    // behavior.  The yield keeps the offered load interleaved
                    // the way distinct open-loop sources actually are.
                    std::this_thread::yield();
                }
            }
        });
    }
    while (ready.load(std::memory_order_acquire) < producers.size()) {
        std::this_thread::yield();
    }
    go.set_value(steady::now());
    for (std::thread& producer : producers) {
        producer.join();
    }

    // Resolve every admitted future.  Each arrival lands in exactly one
    // outcome class; nothing resolves silently (serve/admission.hpp).
    std::vector<steady::duration> latencies;
    latencies.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        ArrivalRecord& record = report.records[i];
        TenantReport& tenant = report.tenants[schedule.arrivals[i].tenant_index];
        ++report.submitted;
        ++tenant.submitted;
        if (!futures[i].valid()) {
            record.outcome = ArrivalOutcome::rejected;
            ++report.rejected;
            ++tenant.rejected;
            continue;
        }
        try {
            record.result = futures[i].get();
            record.outcome = ArrivalOutcome::served;
            record.latency = completed_at[i] - submit_at[i];
            ++report.served;
            ++tenant.served;
            latencies.push_back(record.latency);
            if (config.slo.count() <= 0 || record.latency <= config.slo) {
                ++report.good;
                ++tenant.good;
            }
        } catch (const serve::DeadlineExceeded&) {
            record.outcome = ArrivalOutcome::expired;
            ++report.expired;
            ++tenant.expired;
        } catch (const serve::LoadShed&) {
            record.outcome = ArrivalOutcome::shed;
            ++report.shed;
            ++tenant.shed;
        } catch (const std::runtime_error&) {
            // Engine shut down under the admitted job: the future resolved
            // with the broken-engine error — count it as rejected so the
            // outcome identity still balances.
            record.outcome = ArrivalOutcome::rejected;
            ++report.rejected;
            ++tenant.rejected;
        }
    }

    if (!latencies.empty()) {
        std::sort(latencies.begin(), latencies.end());
        report.p50 = percentile(latencies, 0.50);
        report.p99 = percentile(latencies, 0.99);
        report.p999 = percentile(latencies, 0.999);
    }
    QFA_ASSERT(report.served + report.rejected + report.expired + report.shed ==
                   report.submitted,
               "every open-loop arrival must land in exactly one outcome class");
    return report;
}

}  // namespace qfa::wl
