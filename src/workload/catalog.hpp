// Synthetic function-catalogue generation.
//
// Generates implementation trees with the attribute kinds the paper names
// (§2.2: data rates, discrete processing modes, power consumption,
// code/bitstream sizes, response times, frame sizes, bit-error rates) and
// target-correlated quality, mirroring the fig. 3 pattern: FPGA variants
// lead on throughput-like attributes, DSP variants sit in the middle, and
// plain software trails — so retrieval quality and allocation pressure
// interact the way the paper's motivation describes.
#pragma once

#include <cstdint>

#include "core/attribute.hpp"
#include "core/bounds.hpp"
#include "core/case_base.hpp"
#include "util/rng.hpp"

namespace qfa::wl {

/// Canonical synthetic attribute ids (schemas via catalog_schemas()).
inline constexpr cbr::AttrId kAttrBitwidth{1};
inline constexpr cbr::AttrId kAttrProcessingMode{2};
inline constexpr cbr::AttrId kAttrOutputMode{3};
inline constexpr cbr::AttrId kAttrSampleRate{4};
inline constexpr cbr::AttrId kAttrLatency{5};
inline constexpr cbr::AttrId kAttrFrameSize{6};
inline constexpr cbr::AttrId kAttrErrorRate{7};
inline constexpr cbr::AttrId kAttrChannels{8};
inline constexpr cbr::AttrId kAttrBufferKb{9};
inline constexpr cbr::AttrId kAttrPowerClass{10};

/// Shape of the generated catalogue.
struct CatalogConfig {
    std::uint16_t function_types = 15;   ///< Table 3 default
    std::uint16_t impls_per_type = 10;   ///< Table 3 default
    std::uint16_t attrs_per_impl = 10;   ///< Table 3 default (max 10 kinds)
    /// Probability that a given attribute is omitted from a variant
    /// (0 = dense lists, the Table 3 worst case).
    double attr_dropout = 0.0;
};

/// Schemas for the synthetic attribute kinds.
[[nodiscard]] cbr::SchemaRegistry catalog_schemas();

/// Generates a catalogue; deterministic in (config, rng state).
[[nodiscard]] cbr::CaseBase generate_catalog(const CatalogConfig& config, util::Rng& rng);

/// Convenience: catalogue + derived design-global bounds.
struct GeneratedCatalog {
    cbr::CaseBase case_base;
    cbr::BoundsTable bounds;
};
[[nodiscard]] GeneratedCatalog generate_catalog_with_bounds(const CatalogConfig& config,
                                                            util::Rng& rng);

}  // namespace qfa::wl
