// Open-loop multi-tenant traffic harness for the serve engine.
//
// Every existing driver in this repo is CLOSED-loop: a producer submits,
// blocks at queue capacity, and only offers the next request after the
// system made room — so offered load can never exceed capacity and the
// engine is never actually overloaded.  Real traffic is OPEN-loop: arrivals
// happen on the clock (Poisson processes per tenant, §5's "several
// applications"), whether or not the system kept up, and sustained offered
// load beyond capacity is the steady state this harness exists to create.
// The engine's overload pipeline (serve/admission.hpp: typed rejection →
// deadline expiry → priority shedding) is what it exercises; the report
// measures what SLO-minded operators measure — p50/p99/p999 latency of
// served requests and goodput-under-SLO per tenant — with latency clocked
// from the *scheduled* arrival when pacing, so queue-building slowdowns are
// charged to the system, not hidden by a stalled generator (coordinated
// omission).
//
// Determinism: the arrival schedule — every request, tenant, timestamp —
// is built up front by build_schedule() as a pure function of
// (catalogue, tenants, config.seed); replaying it never consults an Rng.
// Which requests get served/shed/expired under real concurrency is NOT
// deterministic (that is the point of overload), but the outcome *counts*
// always satisfy served + rejected + expired + shed == submitted, and each
// served result is bit-identical to the closed-loop reference for the same
// generated request.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/retrieval.hpp"
#include "serve/admission.hpp"
#include "workload/requests.hpp"
#include "workload/zipf.hpp"

namespace qfa::serve {
class Engine;
}  // namespace qfa::serve

namespace qfa::wl {

/// One traffic source: a tenant with its own rate, popularity skew, SLO
/// class and generation knobs.
struct OpenLoopTenant {
    serve::TenantId tenant = 0;
    double arrival_rate_hz = 1000.0;  ///< mean Poisson rate (events/sec)
    double zipf_s = 1.0;              ///< popularity skew over implemented types
    std::uint8_t priority = 10;       ///< shedding rank (higher survives)
    /// Deadline assigned to each request, relative to its arrival
    /// (nullopt = no deadline: never expires, only sheddable).
    std::optional<std::chrono::steady_clock::duration> relative_deadline = std::nullopt;
    /// Explicit hot/cold popularity split — the shard-skew knob the
    /// stealing bench tables turn.  When BOTH are > 0 it replaces the
    /// Zipf rank draw: with probability `hot_traffic_share` an arrival
    /// targets the hot set (the first ceil(fraction x types) popularity
    /// ranks, uniform within), otherwise the cold remainder (uniform
    /// within).  hot_type_fraction 0.1 + hot_traffic_share 0.9 is the
    /// canonical "90/10" profile: 90% of traffic on 10% of types, which
    /// TypeId sharding concentrates onto few (often one) shard(s).
    /// Either knob at 0 (the default) keeps the plain Zipf draw.
    double hot_type_fraction = 0.0;   ///< fraction of types that are hot
    double hot_traffic_share = 0.0;   ///< fraction of arrivals hitting them
    RequestGenConfig request_gen;
};

/// Periodic rate multiplier: every `period`, arrivals run at
/// `factor` x the base rate for `length` (factor 1 or length 0 = no bursts).
struct BurstConfig {
    double factor = 1.0;
    std::chrono::steady_clock::duration period{std::chrono::seconds(1)};
    std::chrono::steady_clock::duration length{std::chrono::milliseconds(100)};
};

/// Harness knobs.
struct OpenLoopConfig {
    std::uint64_t seed = 0x510;  ///< schedule determinism root
    std::chrono::steady_clock::duration duration{std::chrono::milliseconds(200)};
    BurstConfig burst;
    /// SLO bound for goodput accounting: a served request is GOOD if its
    /// latency is within this (zero = every served request is good).
    std::chrono::steady_clock::duration slo{0};
    cbr::RetrievalOptions options;
    /// true: replay on the schedule's clock (arrival timestamps honored —
    /// offered load is the configured rates).  false: flood — submit every
    /// arrival as fast as the producers can, which guarantees overload on
    /// any machine; latency is then clocked from actual submission.
    bool paced = true;
};

/// One scheduled arrival (schedule order = arrival-time order).
struct Arrival {
    std::chrono::steady_clock::duration at{};  ///< offset from replay start
    std::size_t tenant_index = 0;              ///< into ArrivalSchedule::tenants
    GeneratedRequest generated;
};

/// The precomputed, deterministic traffic tape.
struct ArrivalSchedule {
    std::vector<OpenLoopTenant> tenants;
    std::vector<Arrival> arrivals;  ///< sorted by `at`
};

/// Builds the full arrival tape: per tenant an independent Poisson process
/// (thinned by the burst profile) with Zipf-skewed type popularity, all
/// from rng children split off `config.seed` — byte-for-byte reproducible,
/// independent of thread scheduling, and never consulted again at replay.
[[nodiscard]] ArrivalSchedule build_schedule(const cbr::CaseBase& cb,
                                             const cbr::BoundsTable& bounds,
                                             std::vector<OpenLoopTenant> tenants,
                                             const OpenLoopConfig& config);

/// Per-request outcome classes, mirroring serve/admission.hpp's taxonomy.
enum class ArrivalOutcome : std::uint8_t { served, rejected, expired, shed };

/// What happened to one scheduled arrival.
struct ArrivalRecord {
    ArrivalOutcome outcome = ArrivalOutcome::rejected;
    std::chrono::steady_clock::duration latency{};  ///< served only
    cbr::RetrievalResult result;                    ///< served only
};

/// Aggregates for one tenant.
struct TenantReport {
    serve::TenantId tenant = 0;
    std::uint64_t submitted = 0;
    std::uint64_t served = 0;
    std::uint64_t rejected = 0;
    std::uint64_t expired = 0;
    std::uint64_t shed = 0;
    std::uint64_t good = 0;  ///< served within the SLO bound
};

/// The harness result.  Invariant (asserted by run()):
/// served + rejected + expired + shed == submitted — every arrival has
/// exactly one outcome, nothing is dropped silently.
struct OpenLoopReport {
    std::uint64_t submitted = 0;
    std::uint64_t served = 0;
    std::uint64_t rejected = 0;
    std::uint64_t expired = 0;
    std::uint64_t shed = 0;
    std::uint64_t good = 0;
    std::chrono::steady_clock::duration p50{};   ///< served-latency percentiles
    std::chrono::steady_clock::duration p99{};
    std::chrono::steady_clock::duration p999{};
    std::vector<TenantReport> tenants;
    /// records[i] is arrival i's outcome — the self-check input for
    /// bit-identity against a closed-loop reference replay.
    std::vector<ArrivalRecord> records;
};

/// Replays `schedule` against `engine` with one producer thread per tenant,
/// submitting through Engine::try_submit only (never blocking the clock),
/// and waits for every admitted future before reporting.  See the header
/// comment for the latency/goodput semantics.
[[nodiscard]] OpenLoopReport run_open_loop(serve::Engine& engine,
                                           const ArrivalSchedule& schedule,
                                           const OpenLoopConfig& config);

}  // namespace qfa::wl
