#include "workload/catalog.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace qfa::wl {

namespace {

/// Quality scaling per target: FPGA best, DSP middle, GPP modest.
double target_quality(cbr::Target target) {
    switch (target) {
        case cbr::Target::fpga: return 1.0;
        case cbr::Target::dsp: return 0.75;
        case cbr::Target::gpp: return 0.45;
    }
    return 0.5;
}

cbr::Target target_for_slot(std::uint16_t impl_ordinal) {
    // Cycle through targets so every type offers a hardware/software mix.
    switch (impl_ordinal % 3) {
        case 0: return cbr::Target::fpga;
        case 1: return cbr::Target::dsp;
        default: return cbr::Target::gpp;
    }
}

cbr::AttrValue synthesize_value(cbr::AttrId id, double quality, util::Rng& rng) {
    const double jitter = rng.uniform_real(0.85, 1.15);
    const double q = std::clamp(quality * jitter, 0.05, 1.0);
    switch (id.value()) {
        case 1:  // bitwidth: 8..32, quality-scaled, multiples of 8
            return static_cast<cbr::AttrValue>(8 * (1 + static_cast<int>(q * 3.0)));
        case 2:  // processing mode: float on good variants
            return q > 0.8 ? 1 : 0;
        case 3:  // output mode: mono/stereo/surround
            return static_cast<cbr::AttrValue>(std::min(2, static_cast<int>(q * 3.0)));
        case 4:  // sample rate kS/s: 8..192
            return static_cast<cbr::AttrValue>(8 + q * 184.0);
        case 5:  // latency class (lower is better, invert quality): 1..100
            return static_cast<cbr::AttrValue>(1 + (1.0 - q) * 99.0);
        case 6:  // frame size: 64..4096
            return static_cast<cbr::AttrValue>(64 + q * 4032.0);
        case 7:  // bit-error-rate class (lower better): 0..50
            return static_cast<cbr::AttrValue>((1.0 - q) * 50.0);
        case 8:  // channels: 1..8
            return static_cast<cbr::AttrValue>(1 + q * 7.0);
        case 9:  // buffer KiB: 1..64
            return static_cast<cbr::AttrValue>(1 + q * 63.0);
        case 10:  // power class (lower better): 0..20
            return static_cast<cbr::AttrValue>((1.0 - q) * 20.0);
        default:  // generic 0..100 scale
            return static_cast<cbr::AttrValue>(q * 100.0);
    }
}

cbr::ImplMeta synthesize_meta(cbr::Target target, util::Rng& rng) {
    cbr::ImplMeta meta;
    switch (target) {
        case cbr::Target::fpga:
            meta.config_bytes =
                static_cast<std::uint32_t>(rng.uniform_int(40'000, 200'000));
            meta.demand.clb_slices =
                static_cast<std::uint32_t>(rng.uniform_int(400, 3200));
            meta.demand.brams = static_cast<std::uint32_t>(rng.uniform_int(1, 16));
            meta.demand.multipliers = static_cast<std::uint32_t>(rng.uniform_int(0, 16));
            meta.static_power_mw = static_cast<std::uint32_t>(rng.uniform_int(80, 200));
            meta.dynamic_power_mw = static_cast<std::uint32_t>(rng.uniform_int(100, 350));
            break;
        case cbr::Target::dsp:
            meta.config_bytes = static_cast<std::uint32_t>(rng.uniform_int(8'000, 64'000));
            meta.demand.dsp_load_pct = static_cast<std::uint32_t>(rng.uniform_int(10, 60));
            meta.static_power_mw = static_cast<std::uint32_t>(rng.uniform_int(50, 120));
            meta.dynamic_power_mw = static_cast<std::uint32_t>(rng.uniform_int(80, 250));
            break;
        case cbr::Target::gpp:
            meta.config_bytes = static_cast<std::uint32_t>(rng.uniform_int(2'000, 32'000));
            meta.demand.cpu_load_pct = static_cast<std::uint32_t>(rng.uniform_int(15, 70));
            meta.static_power_mw = static_cast<std::uint32_t>(rng.uniform_int(20, 60));
            meta.dynamic_power_mw = static_cast<std::uint32_t>(rng.uniform_int(150, 400));
            break;
    }
    return meta;
}

}  // namespace

cbr::SchemaRegistry catalog_schemas() {
    cbr::SchemaRegistry registry;
    registry.add({kAttrBitwidth, "bitwidth", "bit", false});
    registry.add({kAttrProcessingMode, "processing-mode", "", true});
    registry.add({kAttrOutputMode, "output-mode", "", true});
    registry.add({kAttrSampleRate, "sampling-rate", "kS/s", false});
    registry.add({kAttrLatency, "latency-class", "", false});
    registry.add({kAttrFrameSize, "frame-size", "samples", false});
    registry.add({kAttrErrorRate, "error-rate-class", "", false});
    registry.add({kAttrChannels, "channels", "", false});
    registry.add({kAttrBufferKb, "buffer", "KiB", false});
    registry.add({kAttrPowerClass, "power-class", "", false});
    return registry;
}

cbr::CaseBase generate_catalog(const CatalogConfig& config, util::Rng& rng) {
    QFA_EXPECTS(config.function_types >= 1, "catalogue needs at least one type");
    QFA_EXPECTS(config.impls_per_type >= 1, "catalogue needs implementations");
    QFA_EXPECTS(config.attrs_per_impl >= 1 && config.attrs_per_impl <= 10,
                "synthetic attribute kinds cover ids 1..10");
    QFA_EXPECTS(config.attr_dropout >= 0.0 && config.attr_dropout < 1.0,
                "dropout must leave some attributes");

    cbr::CaseBaseBuilder builder;
    for (std::uint16_t t = 1; t <= config.function_types; ++t) {
        builder.begin_type(cbr::TypeId{t}, "function-" + std::to_string(t));
        for (std::uint16_t i = 1; i <= config.impls_per_type; ++i) {
            const cbr::Target target = target_for_slot(static_cast<std::uint16_t>(i - 1));
            const double quality = target_quality(target);
            std::vector<cbr::Attribute> attrs;
            for (std::uint16_t a = 1; a <= config.attrs_per_impl; ++a) {
                // Always keep the first attribute so no list is empty.
                if (a > 1 && rng.bernoulli(config.attr_dropout)) {
                    continue;
                }
                attrs.push_back(
                    {cbr::AttrId{a}, synthesize_value(cbr::AttrId{a}, quality, rng)});
            }
            builder.add_impl(cbr::ImplId{i}, target, std::move(attrs),
                             synthesize_meta(target, rng));
        }
    }
    return builder.build();
}

GeneratedCatalog generate_catalog_with_bounds(const CatalogConfig& config, util::Rng& rng) {
    GeneratedCatalog out{generate_catalog(config, rng), {}};
    out.bounds = cbr::BoundsTable::from_case_base(out.case_base);
    return out;
}

}  // namespace qfa::wl
