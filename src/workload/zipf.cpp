#include "workload/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace qfa::wl {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
    QFA_EXPECTS(n >= 1, "Zipf needs at least one rank");
    QFA_EXPECTS(s >= 0.0, "Zipf exponent must be non-negative");
    cdf_.resize(n);
    double total = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        total += 1.0 / std::pow(static_cast<double>(k + 1), s);
        cdf_[k] = total;
    }
    for (double& value : cdf_) {
        value /= total;
    }
    cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(util::Rng& rng) const {
    const double u = rng.uniform01();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

double ZipfSampler::probability(std::size_t rank) const {
    QFA_EXPECTS(rank < cdf_.size(), "rank out of range");
    return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace qfa::wl
