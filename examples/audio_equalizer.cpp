// Audio equalizer — the fig. 3 scenario through the full fig. 1 stack.
//
// An audio application calls the FIR-equalizer function through the
// Application-API; the allocation manager retrieves candidates, checks
// feasibility against the platform, launches the winner on the DSP and the
// function goes live after the configuration load.  A second, repeated call
// then hits the §3 bypass token and skips retrieval entirely.
//
//   ./audio_equalizer
#include <iostream>

#include "alloc/api.hpp"
#include "core/bounds.hpp"
#include "util/strings.hpp"

int main() {
    using namespace qfa;

    // Platform: one FPGA (4 slots), a DSP and a CPU; catalogue in FLASH.
    const cbr::CaseBase catalogue = cbr::paper_example_case_base();
    const cbr::BoundsTable bounds = cbr::paper_example_bounds();
    sys::Platform platform;
    platform.repository().import_case_base(catalogue);

    alloc::AllocationManager manager(platform, catalogue, bounds);
    alloc::ApplicationApi app(manager, /*app id=*/1);

    std::cout << "--- first call: full retrieval + allocation ---\n";
    const alloc::CallResult first = app.call_function(
        cbr::TypeId{1}, {{cbr::AttrId{1}, 16, 1.0},   // 16 bit
                         {cbr::AttrId{3}, 1, 1.0},    // stereo
                         {cbr::AttrId{4}, 40, 1.0}}); // 40 kS/s
    for (const std::string& line : first.trace) {
        std::cout << "  " << line << "\n";
    }
    if (!first.ok) {
        std::cout << "allocation failed\n";
        return 1;
    }
    std::cout << "  granted on " << cbr::target_name(first.grant->target)
              << ", function live at t=" << first.grant->active_at << " us\n";

    // Let the configuration load complete, use the function, release it.
    platform.events().run_until(first.grant->active_at);
    std::cout << "  task state: "
              << sys::task_state_name(platform.task(first.grant->task)->state)
              << ", platform power: " << platform.snapshot().power_mw << " mW\n";
    (void)app.end_function(first.grant->task);

    std::cout << "\n--- repeated call: §3 bypass token, no retrieval ---\n";
    const alloc::CallResult second = app.call_function(
        cbr::TypeId{1}, {{cbr::AttrId{1}, 16, 1.0},
                         {cbr::AttrId{3}, 1, 1.0},
                         {cbr::AttrId{4}, 40, 1.0}});
    for (const std::string& line : second.trace) {
        std::cout << "  " << line << "\n";
    }
    std::cout << "  retrievals performed in total: " << manager.stats().retrievals
              << " (bypass hits: " << manager.bypass_stats().hits << ")\n";
    if (second.ok) {
        (void)app.end_function(second.grant->task);
    }

    std::cout << "\n--- third call: tighter constraints trigger negotiation ---\n";
    alloc::CallOptions strict;
    strict.threshold = 0.99;  // nothing passes at first
    const alloc::CallResult third = app.call_function(
        cbr::TypeId{1}, {{cbr::AttrId{1}, 16, 1.0},
                         {cbr::AttrId{3}, 1, 1.0},
                         {cbr::AttrId{4}, 40, 1.0}},
        strict);
    for (const std::string& line : third.trace) {
        std::cout << "  " << line << "\n";
    }
    std::cout << "  negotiation rounds: " << third.negotiation_rounds << ", outcome: "
              << (third.ok ? "granted after relaxing (§3)" : "rejected") << "\n";
    return 0;
}
