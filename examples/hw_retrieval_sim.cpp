// Hardware retrieval simulation — runs the cycle-accurate fig. 6/7 model
// on the paper's example, prints the cycle/effort statistics and writes a
// VCD waveform you can open in GTKWave to watch the FSM walk the lists.
//
//   ./hw_retrieval_sim [output.vcd]
//
// Without an argument the waveform goes to the system temp directory, not
// the current working directory — running the example from a source
// checkout must not scatter artifacts into the repo.
#include <filesystem>
#include <iostream>

#include "core/bounds.hpp"
#include "mblaze/retrieval_program.hpp"
#include "memimg/request_image.hpp"
#include "memimg/tree_image.hpp"
#include "rtl/retrieval_unit.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
    using namespace qfa;
    const std::string vcd_path =
        argc > 1 ? argv[1]
                 : (std::filesystem::temp_directory_path() / "retrieval_unit.vcd")
                       .string();

    // Pack the fig. 3 case base and request into the hardware memory images.
    const cbr::CaseBase cb = cbr::paper_example_case_base();
    const cbr::BoundsTable bounds = cbr::paper_example_bounds();
    const mem::CaseBaseImage cb_image = mem::encode_case_base(cb, bounds);
    const mem::RequestImage req_image = mem::encode_request(cbr::paper_example_request());

    std::cout << "CB-MEM image:  " << cb_image.words.size() << " words ("
              << util::human_bytes(cb_image.size_bytes()) << ")\n";
    std::cout << "Req-MEM image: " << req_image.words.size() << " words ("
              << util::human_bytes(req_image.size_bytes()) << ")\n\n";

    // Run with a VCD trace attached.
    rtl::VcdWriter vcd;
    rtl::RetrievalUnit unit;
    unit.attach_trace(&vcd);
    const rtl::RtlResult result = unit.run(req_image, cb_image);

    if (!result.found) {
        std::cout << "retrieval failed\n";
        return 1;
    }
    std::cout << "best implementation: impl " << result.best().impl.value()
              << "  S = " << util::to_fixed(result.best().similarity(), 4) << "\n";
    std::cout << "cycles: " << result.cycles << "  ("
              << util::to_fixed(static_cast<double>(result.cycles) / 75.0, 2)
              << " us @75 MHz, the Table 2 clock)\n";
    std::cout << "memory traffic: " << result.req_reads << " Req-MEM reads, "
              << result.cb_reads << " CB-MEM reads\n";
    std::cout << "effort: " << result.impls_scored << " implementations scored, "
              << result.attrs_matched << " attribute matches, "
              << result.attrs_missing << " missing\n\n";

    if (vcd.write_file(vcd_path)) {
        std::cout << "waveform written to " << vcd_path << " ("
                  << vcd.change_count() << " value changes)\n";
    }

    // Same images through the MicroBlaze-class software model.
    const mb::SwRetrievalResult sw = mb::run_sw_retrieval(
        mb::SwProgramKind::compiled_style, req_image, cb_image);
    std::cout << "\nsoftware (compiled-style MicroBlaze listing): "
              << sw.stats.cycles << " cycles -> hardware is "
              << util::to_fixed(static_cast<double>(sw.stats.cycles) /
                                    static_cast<double>(result.cycles), 1)
              << "x faster at equal clock (paper: ~8.5x)\n";
    return 0;
}
