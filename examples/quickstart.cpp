// Quickstart: the paper's fig. 3 walkthrough in ~40 lines of API use.
//
// Build a case base, declare the design-global attribute bounds, issue a
// QoS-constrained request and print the ranked implementation variants —
// reproducing Table 1's result (DSP best at S=0.96).
//
//   ./quickstart
#include <iostream>

#include "core/bounds.hpp"
#include "core/case_base.hpp"
#include "core/request.hpp"
#include "core/retrieval.hpp"
#include "util/strings.hpp"

int main() {
    using namespace qfa::cbr;

    // 1. A function catalogue: one type, three implementation variants.
    const CaseBase case_base =
        CaseBaseBuilder()
            .begin_type(TypeId{1}, "FIR Equalizer")
            .add_impl(ImplId{1}, Target::fpga,
                      {{AttrId{1}, 16},    // bitwidth
                       {AttrId{2}, 0},     // integer mode
                       {AttrId{3}, 2},     // surround output
                       {AttrId{4}, 44}})   // 44 kSamples/s
            .add_impl(ImplId{2}, Target::dsp,
                      {{AttrId{1}, 16}, {AttrId{2}, 0}, {AttrId{3}, 1}, {AttrId{4}, 44}})
            .add_impl(ImplId{3}, Target::gpp,
                      {{AttrId{1}, 8}, {AttrId{2}, 0}, {AttrId{3}, 0}, {AttrId{4}, 22}})
            .build();

    // 2. Design-global attribute bounds (the fig. 4 supplemental data).
    const BoundsTable bounds({
        {AttrId{1}, {8, 16}},   // bitwidth: dmax 8
        {AttrId{2}, {0, 1}},    // processing mode
        {AttrId{3}, {0, 2}},    // output mode: dmax 2
        {AttrId{4}, {8, 44}},   // sampling rate: dmax 36
    });

    // 3. A QoS request: 16 bit, stereo, 40 kS/s, equal weights.
    const Request request(TypeId{1}, {{AttrId{1}, 16, 1.0},
                                      {AttrId{3}, 1, 1.0},
                                      {AttrId{4}, 40, 1.0}});

    // 4. Retrieve the ranked candidates.
    const Retriever retriever(case_base, bounds);
    RetrievalOptions options;
    options.n_best = 3;
    const RetrievalResult result = retriever.retrieve(request, options);

    std::cout << "QoS request: FIR equalizer, 16 bit, stereo, 40 kS/s\n\n";
    for (std::size_t rank = 0; rank < result.matches.size(); ++rank) {
        const Match& match = result.matches[rank];
        std::cout << "  #" << rank + 1 << "  impl " << match.impl.value() << " on "
                  << target_name(match.target)
                  << "  S_global = " << qfa::util::to_fixed(match.similarity, 2)
                  << (rank == 0 ? "   <-- best match" : "") << "\n";
    }
    std::cout << "\n(The paper's Table 1: DSP 0.96 > FPGA 0.85 > GP-Proc 0.43.)\n";
    return 0;
}
