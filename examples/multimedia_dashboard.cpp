// Multimedia dashboard — the fig. 1 application mix under a timed scenario,
// comparing allocation policies on the same workload.
//
// Four applications (MP3 player, video, automotive ECU, cruise control)
// issue Zipf-popular, partly repeated function calls for one simulated
// second; the scenario driver reports grant rate, mean similarity,
// activation latency, preemptions and energy per allocation policy.
//
//   ./multimedia_dashboard
#include <iostream>

#include "alloc/manager.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/catalog.hpp"
#include "workload/scenarios.hpp"

int main() {
    using namespace qfa;

    std::cout << "Generating a synthetic catalogue (15 types x 10 variants x 10 "
                 "attributes, the Table 3 shape)...\n\n";

    util::Table table({"policy", "requests", "grant rate", "bypass", "mean S",
                       "act. latency", "preempts", "energy"});
    for (const auto policy : {alloc::PolicyKind::similarity_first,
                              alloc::PolicyKind::energy_aware,
                              alloc::PolicyKind::load_balancing}) {
        // Fresh, identically seeded world per policy: fair comparison.
        util::Rng rng(31);
        const wl::GeneratedCatalog catalog = wl::generate_catalog_with_bounds({}, rng);
        sys::Platform platform;
        platform.repository().import_case_base(catalog.case_base);
        alloc::AllocationManager manager(platform, catalog.case_base, catalog.bounds,
                                         alloc::make_policy(policy));

        util::Rng profile_rng(67);
        std::vector<wl::AppProfile> apps = {
            wl::make_profile(wl::AppKind::mp3_player, 1, catalog.case_base, profile_rng),
            wl::make_profile(wl::AppKind::video, 2, catalog.case_base, profile_rng),
            wl::make_profile(wl::AppKind::automotive_ecu, 3, catalog.case_base,
                             profile_rng),
            wl::make_profile(wl::AppKind::cruise_control, 4, catalog.case_base,
                             profile_rng),
        };
        wl::ScenarioConfig config;
        config.duration_us = 1'000'000;  // one simulated second
        config.seed = 97;
        wl::ScenarioDriver driver(platform, manager, catalog.case_base, catalog.bounds,
                                  std::move(apps), config);
        const wl::ScenarioReport report = driver.run();

        const auto policy_name = alloc::make_policy(policy)->name();
        table.add_row({policy_name, std::to_string(report.requests),
                       util::to_fixed(report.grant_rate, 3),
                       std::to_string(report.bypass_grants),
                       util::to_fixed(report.mean_similarity, 3),
                       util::to_fixed(report.mean_activation_us / 1000.0, 2) + " ms",
                       std::to_string(report.preemptions),
                       util::to_fixed(report.energy_mj, 1) + " mJ"});
        std::cout << policy_name << ": " << report.summary() << "\n";
    }
    std::cout << "\n" << table.render_with_title(
        "One simulated second, four applications, same seed per policy");
    std::cout << "\nReading: energy-aware trades a little similarity for lower draw;\n"
                 "load-balancing spreads onto idle devices and reduces preemptions.\n";
    return 0;
}
