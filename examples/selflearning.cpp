// Self-learning case base — the §5 outlook made concrete.
//
// The system starts with a sparse catalogue, watches its own allocation
// outcomes, retains newly shipped variants that add knowledge (novelty
// check) and revises out variants that keep failing — the full fig. 2 CBR
// cycle around the retrieval core.
//
//   ./selflearning
#include <iostream>

#include "core/retain.hpp"
#include "core/retrieval.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/catalog.hpp"
#include "workload/requests.hpp"

int main() {
    using namespace qfa;

    // Sparse starting catalogue: 4 types x 2 variants.
    util::Rng rng(2026);
    wl::CatalogConfig sparse;
    sparse.function_types = 4;
    sparse.impls_per_type = 2;
    sparse.attrs_per_impl = 8;
    cbr::DynamicCaseBase knowledge(wl::generate_catalog(sparse, rng));

    // The "world": a rich catalogue whose variants arrive over time.
    wl::CatalogConfig rich = sparse;
    rich.impls_per_type = 8;
    const wl::GeneratedCatalog world = wl::generate_catalog_with_bounds(rich, rng);

    util::Table table({"epoch", "variants", "mean best S", "retained", "rejected dup",
                       "revised out"});
    std::uint16_t next_id = 200;
    for (int epoch = 0; epoch < 6; ++epoch) {
        // RETRIEVE + REUSE: probe requests against current knowledge.
        const cbr::CaseBase snapshot = knowledge.snapshot();
        const cbr::Retriever retriever(snapshot, knowledge.bounds());
        util::Rng probe_rng(100u + static_cast<std::uint64_t>(epoch));
        double similarity_sum = 0.0;
        int probes = 0;
        for (int i = 0; i < 150; ++i) {
            const auto generated =
                wl::generate_request(world.case_base, world.bounds,
                                     wl::random_type(world.case_base, probe_rng),
                                     probe_rng);
            const auto result = retriever.retrieve(generated.request);
            if (result.ok()) {
                similarity_sum += result.best().similarity;
                ++probes;
                // REVISE bookkeeping: poor matches count as failures in use.
                knowledge.record_outcome(generated.type, result.best().impl,
                                         result.best().similarity > 0.55);
            }
        }

        table.add_row({std::to_string(epoch),
                       std::to_string(knowledge.snapshot().stats().impl_count),
                       util::to_fixed(probes ? similarity_sum / probes : 0.0, 4),
                       std::to_string(knowledge.stats().retained),
                       std::to_string(knowledge.stats().rejected_duplicates),
                       std::to_string(knowledge.stats().revised_out)});

        // RETAIN: three candidate variants arrive per epoch; only novel
        // ones are admitted (threshold 0.99 rejects near-duplicates).
        for (int k = 0; k < 3; ++k) {
            const auto& types = world.case_base.types();
            const auto& type = types[rng.index(types.size())];
            const auto& donor = type.impls[rng.index(type.impls.size())];
            cbr::Implementation candidate = donor;
            candidate.id = cbr::ImplId{next_id++};
            const auto verdict = knowledge.retain(type.id, std::move(candidate), 0.99);
            std::cout << "epoch " << epoch << ": retain candidate for type "
                      << type.id.value() << " -> "
                      << (verdict == cbr::RetainVerdict::retained ? "retained"
                          : verdict == cbr::RetainVerdict::duplicate
                              ? "rejected (too similar)"
                              : "rejected") << "\n";
        }
        // REVISE: drop variants failing in > 60 % of at least 10 uses.
        for (const auto& [type, impl] : knowledge.revise(0.6, 10)) {
            std::cout << "epoch " << epoch << ": revised out impl " << impl.value()
                      << " of type " << type.value() << " (chronic failures)\n";
        }
    }

    std::cout << "\n" << table.render_with_title(
        "Learning curve: retained knowledge raises retrieval quality");
    return 0;
}
