// Automotive scenario — priorities and preemption on a shared platform.
//
// An infotainment app (low priority) fills the DSP; then the cruise-control
// app (high priority) needs the same resource class.  The allocation
// manager preempts the infotainment task for the safety function — and the
// infotainment app renegotiates onto a weaker but free variant.
//
//   ./automotive
#include <iostream>

#include "alloc/api.hpp"
#include "core/bounds.hpp"
#include "util/strings.hpp"

namespace {

using namespace qfa;

void show(const char* who, const alloc::CallResult& result) {
    std::cout << who << ":\n";
    for (const std::string& line : result.trace) {
        std::cout << "    " << line << "\n";
    }
    if (result.ok) {
        std::cout << "    -> impl " << result.grant->impl.impl.value() << " on "
                  << cbr::target_name(result.grant->target) << " (S="
                  << util::to_fixed(result.grant->similarity, 2)
                  << ", preemptions=" << result.grant->preemptions << ")\n";
    } else {
        std::cout << "    -> not granted\n";
    }
}

}  // namespace

int main() {
    const cbr::CaseBase catalogue = cbr::paper_example_case_base();
    const cbr::BoundsTable bounds = cbr::paper_example_bounds();
    sys::Platform platform;
    platform.repository().import_case_base(catalogue);
    alloc::AllocationManager manager(platform, catalogue, bounds);

    alloc::ApplicationApi infotainment(manager, 1);
    alloc::ApplicationApi cruise_control(manager, 2);

    // Infotainment grabs the DSP twice (audio processing), priority 8.
    alloc::CallOptions media;
    media.priority = 8;
    std::cout << "=== Phase 1: infotainment fills the DSP ===\n";
    const auto media1 = infotainment.call_function(
        cbr::TypeId{1},
        {{cbr::AttrId{1}, 16, 1.0}, {cbr::AttrId{3}, 1, 1.0}, {cbr::AttrId{4}, 44, 1.0}},
        media);
    show("infotainment call 1", media1);
    const auto media2 = infotainment.call_function(
        cbr::TypeId{1},
        {{cbr::AttrId{1}, 16, 1.0}, {cbr::AttrId{3}, 1, 1.0}, {cbr::AttrId{4}, 44, 1.0}},
        media);
    show("infotainment call 2", media2);
    std::cout << "DSP headroom now: " << platform.snapshot().dsp_headroom_pct << " %\n\n";

    // Cruise control (priority 25) needs a DSP-grade filter *now*.
    std::cout << "=== Phase 2: cruise control preempts ===\n";
    alloc::CallOptions safety;
    safety.priority = 25;
    const auto safety_call = cruise_control.call_function(
        cbr::TypeId{1},
        {{cbr::AttrId{1}, 16, 1.0}, {cbr::AttrId{3}, 1, 1.0}, {cbr::AttrId{4}, 44, 1.0}},
        safety);
    show("cruise-control call", safety_call);
    std::cout << "platform preemptions so far: " << platform.stats().preemptions << "\n\n";

    // The preempted infotainment stream renegotiates; the DSP is partly
    // taken, so it lands on the FPGA or the software variant.
    std::cout << "=== Phase 3: infotainment renegotiates ===\n";
    const auto recovered = infotainment.call_function(
        cbr::TypeId{1},
        {{cbr::AttrId{1}, 16, 1.0}, {cbr::AttrId{3}, 1, 1.0}, {cbr::AttrId{4}, 44, 1.0}},
        media);
    show("infotainment retry", recovered);

    const sys::LoadSnapshot snap = platform.snapshot();
    std::cout << "\nfinal load: DSP headroom " << snap.dsp_headroom_pct
              << " %, CPU headroom " << snap.cpu_headroom_pct << " %, FPGA slots free "
              << snap.fpgas[0].free_slots << "/" << snap.fpgas[0].total_slots
              << ", power " << snap.power_mw << " mW\n";
    return 0;
}
